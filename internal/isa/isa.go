// Package isa defines the compact x64-like intermediate representation on
// which MemGaze-Go's static analysis, binary instrumentation, and
// execution operate.
//
// The real MemGaze instruments x86-64 load modules with DynInst. We model
// the properties that matter to it: procedures made of basic blocks,
// three-address integer instructions, x64 addressing modes
// [base + index*scale + disp], distinguished frame/stack pointers, a
// ptwrite instruction, and per-instruction code addresses and source
// lines. Programs are executed by internal/vm and rewritten by
// internal/instrument.
package isa

import (
	"fmt"
	"strings"
)

// Reg is a machine register. R0..R15 are general purpose; FP and SP are
// the frame and stack pointers (x64 RBP/RSP). NoReg marks an absent
// index/base register in a memory operand.
type Reg uint8

const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	FP
	SP
	NoReg

	// NumRegs is the number of addressable registers (excludes NoReg).
	NumRegs = int(NoReg)
)

func (r Reg) String() string {
	switch {
	case r < FP:
		return fmt.Sprintf("r%d", int(r))
	case r == FP:
		return "fp"
	case r == SP:
		return "sp"
	default:
		return "-"
	}
}

// MemRef is an x64-style memory operand: [Base + Index*Scale + Disp].
// A global (absolute / RIP-relative resolved) reference has Base == NoReg
// and the absolute address in Disp.
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4, or 8; ignored when Index == NoReg
	Disp  int64
}

// IsGlobal reports whether the operand addresses a global absolutely.
func (m MemRef) IsGlobal() bool { return m.Base == NoReg }

func (m MemRef) String() string {
	var b strings.Builder
	b.WriteByte('[')
	parts := 0
	if m.Base != NoReg {
		b.WriteString(m.Base.String())
		parts++
	}
	if m.Index != NoReg {
		if parts > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%s*%d", m.Index, m.Scale)
		parts++
	}
	if m.Disp != 0 || parts == 0 {
		if parts > 0 && m.Disp >= 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%#x", m.Disp)
	}
	b.WriteByte(']')
	return b.String()
}

// Op is an instruction opcode.
type Op uint8

const (
	OpNop     Op = iota
	OpMovImm     // rd = imm
	OpMov        // rd = ra
	OpLoad       // rd = mem64[M]
	OpStore      // mem64[M] = ra
	OpLea        // rd = effective address of M
	OpAdd        // rd = ra + rb
	OpSub        // rd = ra - rb
	OpMul        // rd = ra * rb
	OpDiv        // rd = ra / rb (rb != 0)
	OpRem        // rd = ra % rb (rb != 0)
	OpAddImm     // rd = ra + imm
	OpMulImm     // rd = ra * imm
	OpAnd        // rd = ra & rb
	OpOr         // rd = ra | rb
	OpXor        // rd = ra ^ rb
	OpShlImm     // rd = ra << imm
	OpShrImm     // rd = ra >> imm (logical)
	OpBr         // if ra COND rb goto Target else fall through
	OpBrImm      // if ra COND imm goto Target else fall through
	OpJmp        // goto Target
	OpCall       // call procedure Sym
	OpRet        // return
	OpPTWrite    // emit ra into the processor-trace stream
	OpHalt       // stop the machine
)

var opNames = [...]string{
	OpNop: "nop", OpMovImm: "movi", OpMov: "mov", OpLoad: "load",
	OpStore: "store", OpLea: "lea", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem", OpAddImm: "addi",
	OpMulImm: "muli", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShlImm: "shli", OpShrImm: "shri", OpBr: "br", OpBrImm: "bri",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpPTWrite: "ptwrite",
	OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is a branch condition.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT // signed <
	CondLE
	CondGT
	CondGE
	CondULT // unsigned <
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ult"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Instr is a single instruction. Fields are used per-opcode; unused
// fields are zero. Addr is the code address assigned by Program.Link,
// Line is the synthetic source line for attribution.
type Instr struct {
	Op     Op
	Rd     Reg
	Ra     Reg
	Rb     Reg
	Imm    int64
	M      MemRef
	Cond   Cond
	Target string // branch/jump target block label, or callee for OpCall
	Line   int32
	Addr   uint64 // assigned at link
}

// EncodedSize returns the byte size of the instruction in our synthetic
// encoding. Loads/stores and ptwrite are longer, like their x64
// counterparts; the sizes feed "binary size" metrics (Table II).
func (in *Instr) EncodedSize() int {
	switch in.Op {
	case OpLoad, OpStore, OpLea:
		return 6
	case OpPTWrite:
		return 5 // f3 REX 0f ae /4
	case OpMovImm, OpAddImm, OpMulImm, OpShlImm, OpShrImm, OpBrImm:
		return 5
	case OpCall, OpJmp, OpBr:
		return 5
	case OpNop, OpRet, OpHalt:
		return 1
	default:
		return 3
	}
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []Reg {
	var u []Reg
	addMem := func(m MemRef) {
		if m.Base != NoReg {
			u = append(u, m.Base)
		}
		if m.Index != NoReg {
			u = append(u, m.Index)
		}
	}
	switch in.Op {
	case OpMov:
		u = append(u, in.Ra)
	case OpLoad, OpLea:
		addMem(in.M)
	case OpStore:
		u = append(u, in.Ra)
		addMem(in.M)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpBr:
		u = append(u, in.Ra, in.Rb)
	case OpAddImm, OpMulImm, OpShlImm, OpShrImm, OpBrImm:
		u = append(u, in.Ra)
	case OpPTWrite:
		u = append(u, in.Ra)
	}
	return u
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpMovImm, OpMov, OpLoad, OpLea, OpAdd, OpSub, OpMul, OpDiv,
		OpRem, OpAddImm, OpMulImm, OpAnd, OpOr, OpXor, OpShlImm, OpShrImm:
		return in.Rd
	}
	return NoReg
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpBrImm, OpJmp, OpRet, OpHalt:
		return true
	}
	return false
}

func (in *Instr) String() string {
	switch in.Op {
	case OpNop, OpRet, OpHalt:
		return in.Op.String()
	case OpMovImm:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Ra)
	case OpLoad, OpLea:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.M)
	case OpStore:
		return fmt.Sprintf("%s %s, %s", in.Op, in.M, in.Ra)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
	case OpAddImm, OpMulImm, OpShlImm, OpShrImm:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case OpBr:
		return fmt.Sprintf("%s.%s %s, %s, %s", in.Op, in.Cond, in.Ra, in.Rb, in.Target)
	case OpBrImm:
		return fmt.Sprintf("%s.%s %s, %d, %s", in.Op, in.Cond, in.Ra, in.Imm, in.Target)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %s", in.Op, in.Target)
	case OpPTWrite:
		return fmt.Sprintf("%s %s", in.Op, in.Ra)
	default:
		return in.Op.String()
	}
}

// Block is a basic block: a label and straight-line instructions. Control
// falls through to the next block in the procedure unless the last
// instruction is an unconditional terminator.
type Block struct {
	Label  string
	Instrs []Instr
}

// Proc is a procedure. FrameSize bytes are reserved below FP for locals;
// O0-compiled workloads spill loop variables there, producing the
// Constant loads that MemGaze's compression elides.
type Proc struct {
	Name      string
	Blocks    []*Block
	FrameSize int64
}

// BlockIndex returns the index of the block with the given label, or -1.
func (p *Proc) BlockIndex(label string) int {
	for i, b := range p.Blocks {
		if b.Label == label {
			return i
		}
	}
	return -1
}

// NumInstrs returns the total instruction count of the procedure.
func (p *Proc) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Program is a linked set of procedures (a "load module").
type Program struct {
	Name  string
	Procs []*Proc
	Entry string // entry procedure name

	procIdx map[string]*Proc
	byAddr  map[uint64]*InstrRef
	size    int
}

// InstrRef locates an instruction within a program.
type InstrRef struct {
	Proc  *Proc
	Block int
	Index int
}

// Instr returns the referenced instruction.
func (r *InstrRef) Instr() *Instr { return &r.Proc.Blocks[r.Block].Instrs[r.Index] }

// NewProgram creates a program; call Link after adding procedures.
func NewProgram(name, entry string) *Program {
	return &Program{Name: name, Entry: entry}
}

// Add appends a procedure.
func (p *Program) Add(proc *Proc) { p.Procs = append(p.Procs, proc) }

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Proc {
	if p.procIdx != nil {
		return p.procIdx[name]
	}
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// Link assigns code addresses to every instruction (text base 0x401000,
// synthetic encoding sizes), builds lookup indexes, and validates branch
// targets and callees. It must be called after any structural edit —
// instrumentation re-links and the address shift is what §III-D's source
// remapping repairs.
func (p *Program) Link() error {
	p.procIdx = make(map[string]*Proc, len(p.Procs))
	p.byAddr = make(map[uint64]*InstrRef)
	addr := uint64(0x401000)
	for _, proc := range p.Procs {
		if _, dup := p.procIdx[proc.Name]; dup {
			return fmt.Errorf("isa: duplicate procedure %q", proc.Name)
		}
		p.procIdx[proc.Name] = proc
		labels := make(map[string]bool, len(proc.Blocks))
		for _, b := range proc.Blocks {
			if labels[b.Label] {
				return fmt.Errorf("isa: %s: duplicate label %q", proc.Name, b.Label)
			}
			labels[b.Label] = true
		}
		for bi, b := range proc.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				in.Addr = addr
				addr += uint64(in.EncodedSize())
				p.byAddr[in.Addr] = &InstrRef{Proc: proc, Block: bi, Index: ii}
				switch in.Op {
				case OpBr, OpBrImm, OpJmp:
					if !labels[in.Target] {
						return fmt.Errorf("isa: %s: branch to unknown label %q", proc.Name, in.Target)
					}
				}
			}
		}
		// Pad between procedures, as linkers align function entries.
		addr = (addr + 15) &^ 15
	}
	for _, proc := range p.Procs {
		for _, b := range proc.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op == OpCall {
					if _, ok := p.procIdx[in.Target]; !ok {
						return fmt.Errorf("isa: %s: call to unknown procedure %q", proc.Name, in.Target)
					}
				}
			}
		}
	}
	if _, ok := p.procIdx[p.Entry]; !ok {
		return fmt.Errorf("isa: entry procedure %q not found", p.Entry)
	}
	p.size = int(addr - 0x401000)
	return nil
}

// FindByAddr returns the instruction at a code address (post-Link).
func (p *Program) FindByAddr(a uint64) *InstrRef { return p.byAddr[a] }

// ProcByAddr returns the procedure containing code address a, or nil.
func (p *Program) ProcByAddr(a uint64) *Proc {
	if r := p.byAddr[a]; r != nil {
		return r.Proc
	}
	return nil
}

// Size returns the linked text size in bytes.
func (p *Program) Size() int { return p.size }

// NumInstrs returns the total instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, proc := range p.Procs {
		n += proc.NumInstrs()
	}
	return n
}

// Disasm renders the program as text, one instruction per line, with
// addresses — a debugging aid and the anchor for golden tests.
func (p *Program) Disasm() string {
	var b strings.Builder
	for _, proc := range p.Procs {
		fmt.Fprintf(&b, "%s: (frame %d)\n", proc.Name, proc.FrameSize)
		for _, blk := range proc.Blocks {
			fmt.Fprintf(&b, "  .%s:\n", blk.Label)
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				fmt.Fprintf(&b, "    %#x: %s\n", in.Addr, in.String())
			}
		}
	}
	return b.String()
}

// Clone deep-copies the program (blocks and instructions). The clone is
// unlinked; callers must call Link. Instrumentation clones the input so
// the original binary remains available for uninstrumented runs.
func (p *Program) Clone() *Program {
	q := NewProgram(p.Name, p.Entry)
	for _, proc := range p.Procs {
		np := &Proc{Name: proc.Name, FrameSize: proc.FrameSize}
		for _, blk := range proc.Blocks {
			nb := &Block{Label: blk.Label, Instrs: make([]Instr, len(blk.Instrs))}
			copy(nb.Instrs, blk.Instrs)
			np.Blocks = append(np.Blocks, nb)
		}
		q.Add(np)
	}
	return q
}
