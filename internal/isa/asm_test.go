package isa

import (
	"strings"
	"testing"
)

const sampleAsm = `
; a strided loop calling a helper
entry main
main: (frame 32)
  .entry:
    movi r4, 0x20000000
    movi r5, 0
  .loop:
    load r0, [r4+r5*8]
    load r1, [fp+0x8]
    addi r5, r5, 1
    call helper
    bri.lt r5, 100, loop
  .done:
    halt
helper: (frame 16)
  .entry:
    load r2, [0x400100]
    store [fp+0x0], r2
    ret
`

func TestParseSample(t *testing.T) {
	p, err := Parse("sample", strings.NewReader(sampleAsm))
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "main" {
		t.Errorf("entry = %q", p.Entry)
	}
	if len(p.Procs) != 2 {
		t.Fatalf("procs = %d", len(p.Procs))
	}
	main := p.Proc("main")
	if main.FrameSize != 32 {
		t.Errorf("frame = %d", main.FrameSize)
	}
	if got := main.BlockIndex("loop"); got != 1 {
		t.Errorf("loop block index = %d", got)
	}
	// Operand details survived.
	loop := main.Blocks[1]
	if loop.Instrs[0].Op != OpLoad || loop.Instrs[0].M.Index != R5 || loop.Instrs[0].M.Scale != 8 {
		t.Errorf("indexed load parsed as %v", loop.Instrs[0])
	}
	if loop.Instrs[1].M.Base != FP || loop.Instrs[1].M.Disp != 8 {
		t.Errorf("frame load parsed as %v", loop.Instrs[1])
	}
	h := p.Proc("helper")
	if !h.Blocks[0].Instrs[0].M.IsGlobal() {
		t.Errorf("global load parsed as %v", h.Blocks[0].Instrs[0])
	}
}

func TestParseDisasmRoundtrip(t *testing.T) {
	p1, err := Parse("rt", strings.NewReader(sampleAsm))
	if err != nil {
		t.Fatal(err)
	}
	text := "entry main\n" + p1.Disasm()
	p2, err := Parse("rt", strings.NewReader(text))
	if err != nil {
		t.Fatalf("reparsing disassembly: %v\n%s", err, text)
	}
	// Structure survives a full round trip (lines differ; compare the
	// re-disassembly, which is line-free).
	if p1.Disasm() != p2.Disasm() {
		t.Errorf("roundtrip changed program:\n--- first\n%s\n--- second\n%s", p1.Disasm(), p2.Disasm())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"main:\n  .b:\n    bogus r1, r2",
		"main:\n  .b:\n    movi r99, 1",
		"main:\n  .b:\n    load r0, r1",          // not a memory operand
		"main:\n  .b:\n    br r1, r2, somewhere", // missing condition
		"    movi r1, 2",                         // instruction outside proc
		"main:\n  .b:\n    jmp nowhere\n",        // unknown label (link error)
	}
	for _, src := range cases {
		if _, err := Parse("bad", strings.NewReader(src)); err == nil {
			t.Errorf("expected error for:\n%s", src)
		}
	}
}

func TestParsedProgramExecutesAndClassifies(t *testing.T) {
	// The parsed module must flow through linking, so addresses exist
	// for classification and instrumentation downstream.
	p, err := Parse("sample", strings.NewReader(sampleAsm))
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range p.Procs {
		for _, b := range proc.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Addr == 0 {
					t.Fatalf("unlinked instruction %v", b.Instrs[i])
				}
			}
		}
	}
}
