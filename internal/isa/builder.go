package isa

// ProcBuilder is a tiny assembler for constructing procedures in Go code.
// Workload generators use it as a compiler back end: each call appends an
// instruction to the current block tagged with the current source line.
type ProcBuilder struct {
	proc *Proc
	cur  *Block
	line int32
}

// NewProc starts building a procedure with the given stack frame size.
// An entry block labelled "entry" is opened automatically.
func NewProc(name string, frameSize int64) *ProcBuilder {
	b := &ProcBuilder{proc: &Proc{Name: name, FrameSize: frameSize}}
	b.Label("entry")
	return b
}

// Line sets the synthetic source line applied to subsequent instructions.
func (b *ProcBuilder) Line(n int) *ProcBuilder { b.line = int32(n); return b }

// Label closes the current block and opens a new one.
func (b *ProcBuilder) Label(label string) *ProcBuilder {
	b.cur = &Block{Label: label}
	b.proc.Blocks = append(b.proc.Blocks, b.cur)
	return b
}

func (b *ProcBuilder) emit(in Instr) *ProcBuilder {
	in.Line = b.line
	b.cur.Instrs = append(b.cur.Instrs, in)
	return b
}

// Finish returns the built procedure.
func (b *ProcBuilder) Finish() *Proc { return b.proc }

// MovImm emits rd = imm.
func (b *ProcBuilder) MovImm(rd Reg, imm int64) *ProcBuilder {
	return b.emit(Instr{Op: OpMovImm, Rd: rd, Imm: imm})
}

// Mov emits rd = ra.
func (b *ProcBuilder) Mov(rd, ra Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpMov, Rd: rd, Ra: ra})
}

// Load emits rd = mem64[m].
func (b *ProcBuilder) Load(rd Reg, m MemRef) *ProcBuilder {
	return b.emit(Instr{Op: OpLoad, Rd: rd, M: m})
}

// Store emits mem64[m] = ra.
func (b *ProcBuilder) Store(m MemRef, ra Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpStore, M: m, Ra: ra})
}

// Lea emits rd = &m.
func (b *ProcBuilder) Lea(rd Reg, m MemRef) *ProcBuilder {
	return b.emit(Instr{Op: OpLea, Rd: rd, M: m})
}

// Add emits rd = ra + rb.
func (b *ProcBuilder) Add(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// Sub emits rd = ra - rb.
func (b *ProcBuilder) Sub(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// Mul emits rd = ra * rb.
func (b *ProcBuilder) Mul(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// Div emits rd = ra / rb.
func (b *ProcBuilder) Div(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpDiv, Rd: rd, Ra: ra, Rb: rb})
}

// Rem emits rd = ra % rb.
func (b *ProcBuilder) Rem(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpRem, Rd: rd, Ra: ra, Rb: rb})
}

// AddImm emits rd = ra + imm.
func (b *ProcBuilder) AddImm(rd, ra Reg, imm int64) *ProcBuilder {
	return b.emit(Instr{Op: OpAddImm, Rd: rd, Ra: ra, Imm: imm})
}

// MulImm emits rd = ra * imm.
func (b *ProcBuilder) MulImm(rd, ra Reg, imm int64) *ProcBuilder {
	return b.emit(Instr{Op: OpMulImm, Rd: rd, Ra: ra, Imm: imm})
}

// And emits rd = ra & rb.
func (b *ProcBuilder) And(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// Or emits rd = ra | rb.
func (b *ProcBuilder) Or(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd = ra ^ rb.
func (b *ProcBuilder) Xor(rd, ra, rb Reg) *ProcBuilder {
	return b.emit(Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// ShlImm emits rd = ra << imm.
func (b *ProcBuilder) ShlImm(rd, ra Reg, imm int64) *ProcBuilder {
	return b.emit(Instr{Op: OpShlImm, Rd: rd, Ra: ra, Imm: imm})
}

// ShrImm emits rd = ra >> imm (logical).
func (b *ProcBuilder) ShrImm(rd, ra Reg, imm int64) *ProcBuilder {
	return b.emit(Instr{Op: OpShrImm, Rd: rd, Ra: ra, Imm: imm})
}

// Br emits a conditional branch: if ra cond rb goto target.
func (b *ProcBuilder) Br(cond Cond, ra, rb Reg, target string) *ProcBuilder {
	return b.emit(Instr{Op: OpBr, Cond: cond, Ra: ra, Rb: rb, Target: target})
}

// BrImm emits a conditional branch against an immediate.
func (b *ProcBuilder) BrImm(cond Cond, ra Reg, imm int64, target string) *ProcBuilder {
	return b.emit(Instr{Op: OpBrImm, Cond: cond, Ra: ra, Imm: imm, Target: target})
}

// Jmp emits an unconditional jump.
func (b *ProcBuilder) Jmp(target string) *ProcBuilder {
	return b.emit(Instr{Op: OpJmp, Target: target})
}

// Call emits a procedure call.
func (b *ProcBuilder) Call(proc string) *ProcBuilder {
	return b.emit(Instr{Op: OpCall, Target: proc})
}

// Ret emits a return.
func (b *ProcBuilder) Ret() *ProcBuilder { return b.emit(Instr{Op: OpRet}) }

// Halt emits a machine stop.
func (b *ProcBuilder) Halt() *ProcBuilder { return b.emit(Instr{Op: OpHalt}) }

// Nop emits a no-op.
func (b *ProcBuilder) Nop() *ProcBuilder { return b.emit(Instr{Op: OpNop}) }

// Frame returns a frame-relative scalar memory operand [fp + disp] — the
// shape MemGaze classifies as a Constant load.
func Frame(disp int64) MemRef { return MemRef{Base: FP, Index: NoReg, Disp: disp} }

// Global returns an absolute memory operand addressing a global scalar.
func Global(addr uint64) MemRef {
	return MemRef{Base: NoReg, Index: NoReg, Disp: int64(addr)}
}

// Ind returns an indirect operand [base + disp].
func Ind(base Reg, disp int64) MemRef {
	return MemRef{Base: base, Index: NoReg, Disp: disp}
}

// Idx returns an indexed operand [base + index*scale + disp].
func Idx(base, index Reg, scale uint8, disp int64) MemRef {
	return MemRef{Base: base, Index: index, Scale: scale, Disp: disp}
}
