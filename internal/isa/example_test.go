package isa_test

import (
	"fmt"
	"strings"

	"github.com/memgaze/memgaze-go/internal/isa"
)

// Hand-written modules flow through the same toolchain as generated
// ones: parse, then inspect or instrument.
func ExampleParse() {
	src := `
sum: (frame 16)
  .entry:
    movi r4, 0x20000000
    movi r5, 0
    movi r6, 0
  .loop:
    load r0, [r4+r5*8]
    add r6, r6, r0
    addi r5, r5, 1
    bri.lt r5, 8, loop
  .done:
    halt
`
	prog, err := isa.Parse("sum", strings.NewReader(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d procedure(s), %d instructions, %d B of text\n",
		len(prog.Procs), prog.NumInstrs(), prog.Size())
	// Output: 1 procedure(s), 8 instructions, 48 B of text
}

// The builder is a tiny assembler for constructing procedures in Go.
func ExampleProcBuilder() {
	proc := isa.NewProc("copy", 0).
		MovImm(isa.R1, 0x1000).
		Load(isa.R0, isa.Ind(isa.R1, 0)).
		Store(isa.Ind(isa.R1, 8), isa.R0).
		Halt().
		Finish()
	fmt.Println(proc.NumInstrs(), "instructions in", proc.Name)
	// Output: 4 instructions in copy
}
