package isa

import (
	"strings"
	"testing"
)

func buildToy() *Program {
	p := NewProgram("toy", "main")
	sub := NewProc("sub", 16).
		Load(R0, Frame(0)).
		Ret().
		Finish()
	main := NewProc("main", 32).
		MovImm(R4, 100).
		MovImm(R5, 0).
		Label("loop").
		Load(R0, Idx(R4, R5, 8, 0)).
		AddImm(R5, R5, 1).
		Call("sub").
		BrImm(CondLT, R5, 10, "loop").
		Label("done").
		Halt().
		Finish()
	p.Add(main)
	p.Add(sub)
	return p
}

func TestLinkAssignsMonotonicAddresses(t *testing.T) {
	p := buildToy()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for _, proc := range p.Procs {
		for _, b := range proc.Blocks {
			for i := range b.Instrs {
				a := b.Instrs[i].Addr
				if a <= last {
					t.Fatalf("address %#x not increasing after %#x", a, last)
				}
				last = a
				if got := p.FindByAddr(a); got == nil || got.Instr() != &b.Instrs[i] {
					t.Fatalf("FindByAddr(%#x) mismatch", a)
				}
			}
		}
	}
	if p.Size() <= 0 {
		t.Error("zero text size")
	}
}

func TestLinkValidation(t *testing.T) {
	// Unknown branch target.
	p := NewProgram("bad", "main")
	p.Add(NewProc("main", 0).Jmp("nowhere").Finish())
	if err := p.Link(); err == nil {
		t.Error("expected error for unknown label")
	}
	// Unknown callee.
	p2 := NewProgram("bad2", "main")
	p2.Add(NewProc("main", 0).Call("ghost").Finish())
	if err := p2.Link(); err == nil {
		t.Error("expected error for unknown callee")
	}
	// Duplicate label.
	p3 := NewProgram("bad3", "main")
	pb := NewProc("main", 0)
	pb.Label("x").Nop().Label("x").Halt()
	p3.Add(pb.Finish())
	if err := p3.Link(); err == nil {
		t.Error("expected error for duplicate label")
	}
	// Missing entry.
	p4 := NewProgram("bad4", "nope")
	p4.Add(NewProc("main", 0).Halt().Finish())
	if err := p4.Link(); err == nil {
		t.Error("expected error for missing entry")
	}
	// Duplicate procedure.
	p5 := NewProgram("bad5", "main")
	p5.Add(NewProc("main", 0).Halt().Finish())
	p5.Add(NewProc("main", 0).Halt().Finish())
	if err := p5.Link(); err == nil {
		t.Error("expected error for duplicate procedure")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildToy()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Procs[0].Blocks[0].Instrs[0].Imm = 999
	if p.Procs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Error("clone shares instruction storage")
	}
	if err := q.Link(); err != nil {
		t.Fatal(err)
	}
}

func TestUsesAndDef(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: OpMovImm, Rd: R1, Imm: 5}, nil, R1},
		{Instr{Op: OpLoad, Rd: R2, M: Idx(R3, R4, 8, 0)}, []Reg{R3, R4}, R2},
		{Instr{Op: OpStore, Ra: R5, M: Ind(R6, 8)}, []Reg{R5, R6}, NoReg},
		{Instr{Op: OpAdd, Rd: R1, Ra: R2, Rb: R3}, []Reg{R2, R3}, R1},
		{Instr{Op: OpPTWrite, Ra: R7}, []Reg{R7}, NoReg},
		{Instr{Op: OpBrImm, Ra: R1, Imm: 3}, []Reg{R1}, NoReg},
		{Instr{Op: OpRet}, nil, NoReg},
	}
	for _, c := range cases {
		if got := c.in.Def(); got != c.def {
			t.Errorf("%s: Def = %v, want %v", c.in.String(), got, c.def)
		}
		uses := c.in.Uses()
		if len(uses) != len(c.uses) {
			t.Errorf("%s: Uses = %v, want %v", c.in.String(), uses, c.uses)
			continue
		}
		for i := range uses {
			if uses[i] != c.uses[i] {
				t.Errorf("%s: Uses = %v, want %v", c.in.String(), uses, c.uses)
			}
		}
	}
}

func TestDisasmContainsEverything(t *testing.T) {
	p := buildToy()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	d := p.Disasm()
	for _, want := range []string{"main:", "sub:", ".loop:", "ptwrite", "call sub", "halt"} {
		if want == "ptwrite" {
			continue // toy program has no ptwrite
		}
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}

func TestMemRefString(t *testing.T) {
	cases := map[string]MemRef{
		"[r4+r5*8]":     Idx(R4, R5, 8, 0),
		"[fp+0x10]":     Frame(16),
		"[0x400000]":    Global(0x400000),
		"[r3+0x8]":      Ind(R3, 8),
		"[r1+r2*4+0x4]": Idx(R1, R2, 4, 4),
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Errorf("MemRef = %q, want %q", got, want)
		}
	}
}

func TestEncodedSizesPositive(t *testing.T) {
	for op := OpNop; op <= OpHalt; op++ {
		in := Instr{Op: op}
		if in.EncodedSize() <= 0 {
			t.Errorf("op %v has non-positive size", op)
		}
	}
}
