package isa

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a program in the textual assembly format produced by
// Program.Disasm (addresses optional), so hand-written or dumped
// modules can be fed back through the toolchain:
//
//	main: (frame 32)
//	  .entry:
//	    movi r4, 100
//	    movi r5, 0
//	  .loop:
//	    load r0, [r4+r5*8]
//	    addi r5, r5, 1
//	    bri.lt r5, 10, loop
//	  .done:
//	    halt
//
// Lines starting with ';' or '#' are comments. The first procedure is
// the entry unless a line "entry <name>" appears. The returned program
// is linked.
func Parse(name string, r io.Reader) (*Program, error) {
	p := NewProgram(name, "")
	var cur *Proc
	var curBlk *Block
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		// Strip a leading "0x...:" address from disassembler output.
		if strings.HasPrefix(line, "0x") {
			if i := strings.Index(line, ": "); i > 0 {
				line = strings.TrimSpace(line[i+2:])
			}
		}
		switch {
		case strings.HasPrefix(line, "entry "):
			p.Entry = strings.TrimSpace(strings.TrimPrefix(line, "entry "))
		case strings.HasPrefix(line, "."):
			if cur == nil {
				return nil, fmt.Errorf("line %d: block label outside procedure", lineNo)
			}
			label := strings.TrimSuffix(strings.TrimPrefix(line, "."), ":")
			curBlk = &Block{Label: label}
			cur.Blocks = append(cur.Blocks, curBlk)
		case strings.HasSuffix(line, ":") || strings.Contains(line, ": (frame"):
			// Procedure header: "name:" or "name: (frame N)".
			head := line
			frame := int64(0)
			if i := strings.Index(line, ": (frame"); i >= 0 {
				head = line[:i+1]
				fs := strings.TrimSuffix(strings.TrimSpace(line[i+8:]), ")")
				v, err := strconv.ParseInt(strings.TrimSpace(fs), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: bad frame size: %v", lineNo, err)
				}
				frame = v
			}
			pname := strings.TrimSuffix(strings.TrimSpace(head), ":")
			cur = &Proc{Name: pname, FrameSize: frame}
			curBlk = &Block{Label: "entry"}
			cur.Blocks = append(cur.Blocks, curBlk)
			p.Add(cur)
			if p.Entry == "" {
				p.Entry = pname
			}
		default:
			if curBlk == nil {
				return nil, fmt.Errorf("line %d: instruction outside procedure", lineNo)
			}
			in, err := parseInstr(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			in.Line = int32(lineNo)
			curBlk.Instrs = append(curBlk.Instrs, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Drop empty leading blocks left by headers immediately followed by
	// labels.
	for _, proc := range p.Procs {
		if len(proc.Blocks) > 1 && len(proc.Blocks[0].Instrs) == 0 {
			proc.Blocks = proc.Blocks[1:]
		}
	}
	if err := p.Link(); err != nil {
		return nil, err
	}
	return p, nil
}

var condByName = map[string]Cond{
	"eq": CondEQ, "ne": CondNE, "lt": CondLT, "le": CondLE,
	"gt": CondGT, "ge": CondGE, "ult": CondULT,
}

func parseInstr(line string) (Instr, error) {
	fields := strings.SplitN(line, " ", 2)
	mnem := fields[0]
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	// Conditional mnemonics: br.lt, bri.ult, ...
	var cond Cond
	hasCond := false
	if i := strings.IndexByte(mnem, '.'); i > 0 {
		c, ok := condByName[mnem[i+1:]]
		if !ok {
			return Instr{}, fmt.Errorf("unknown condition %q", mnem[i+1:])
		}
		cond, hasCond = c, true
		mnem = mnem[:i]
	}

	switch mnem {
	case "nop":
		return Instr{Op: OpNop}, nil
	case "ret":
		return Instr{Op: OpRet}, nil
	case "halt":
		return Instr{Op: OpHalt}, nil
	case "movi":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMovImm, Rd: rd, Imm: imm}, nil
	case "mov":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMov, Rd: rd, Ra: ra}, nil
	case "load", "lea":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		m, err := parseMem(args[1])
		if err != nil {
			return Instr{}, err
		}
		op := OpLoad
		if mnem == "lea" {
			op = OpLea
		}
		return Instr{Op: op, Rd: rd, M: m}, nil
	case "store":
		if err := need(2); err != nil {
			return Instr{}, err
		}
		m, err := parseMem(args[0])
		if err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpStore, M: m, Ra: ra}, nil
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		ops := map[string]Op{"add": OpAdd, "sub": OpSub, "mul": OpMul,
			"div": OpDiv, "rem": OpRem, "and": OpAnd, "or": OpOr, "xor": OpXor}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		rb, err := parseReg(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: ops[mnem], Rd: rd, Ra: ra, Rb: rb}, nil
	case "addi", "muli", "shli", "shri":
		if err := need(3); err != nil {
			return Instr{}, err
		}
		ops := map[string]Op{"addi": OpAddImm, "muli": OpMulImm,
			"shli": OpShlImm, "shri": OpShrImm}
		rd, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: ops[mnem], Rd: rd, Ra: ra, Imm: imm}, nil
	case "br":
		if !hasCond {
			return Instr{}, fmt.Errorf("br needs a condition suffix (br.lt etc.)")
		}
		if err := need(3); err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		rb, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpBr, Cond: cond, Ra: ra, Rb: rb, Target: args[2]}, nil
	case "bri":
		if !hasCond {
			return Instr{}, fmt.Errorf("bri needs a condition suffix")
		}
		if err := need(3); err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpBrImm, Cond: cond, Ra: ra, Imm: imm, Target: args[2]}, nil
	case "jmp":
		if err := need(1); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpJmp, Target: args[0]}, nil
	case "call":
		if err := need(1); err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpCall, Target: args[0]}, nil
	case "ptwrite":
		if err := need(1); err != nil {
			return Instr{}, err
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpPTWrite, Ra: ra}, nil
	}
	return Instr{}, fmt.Errorf("unknown mnemonic %q", mnem)
}

func parseReg(s string) (Reg, error) {
	switch s {
	case "fp":
		return FP, nil
	case "sp":
		return SP, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 16 {
			return Reg(n), nil
		}
	}
	return NoReg, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// parseMem parses [base + index*scale + disp] with any subset of
// components, as printed by MemRef.String.
func parseMem(s string) (MemRef, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return MemRef{}, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	m := MemRef{Base: NoReg, Index: NoReg}
	// Split on '+' but keep a possible leading '-' on the displacement.
	body = strings.ReplaceAll(body, "-", "+-")
	for _, part := range strings.Split(body, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case strings.Contains(part, "*"):
			halves := strings.SplitN(part, "*", 2)
			idx, err := parseReg(strings.TrimSpace(halves[0]))
			if err != nil {
				return MemRef{}, err
			}
			sc, err := strconv.Atoi(strings.TrimSpace(halves[1]))
			if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8 && sc != 16) {
				return MemRef{}, fmt.Errorf("bad scale in %q", part)
			}
			m.Index, m.Scale = idx, uint8(sc)
		case part == "fp" || part == "sp" || (strings.HasPrefix(part, "r") && !strings.HasPrefix(part, "0x")):
			b, err := parseReg(part)
			if err != nil {
				return MemRef{}, err
			}
			m.Base = b
		default:
			d, err := strconv.ParseInt(part, 0, 64)
			if err != nil {
				return MemRef{}, fmt.Errorf("bad displacement %q", part)
			}
			m.Disp += d
		}
	}
	return m, nil
}
