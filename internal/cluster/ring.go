// Package cluster turns a set of memgazed replicas into one fleet: a
// static-peer ring assigns every trace id its owner replicas by
// rendezvous hashing (the top-K peers of the key's score order, K the
// replication factor), a background prober tracks which peers are
// serving via their /v1/readyz endpoints, and a retrying proxy client
// forwards requests to owners. Ownership is a pure function of (peer
// set, trace id) — every replica configured with the same -peers list
// computes the same owner order for every key, with no coordination,
// no gossip, and no persistent membership state. Trace ids are content
// hashes (the same bytes land at the same key on any replica), so
// routing by id is routing by content, and replicas of a trace are
// byte-identical by construction. See DESIGN.md ("Cluster routing" and
// "Replicated ownership").
package cluster

import (
	"hash/fnv"
	"sort"
)

// Owner returns the rendezvous-hash owner of key among peers: the peer
// whose score fnv64a(peer || 0x00 || key) is highest, ties broken by
// the lexicographically smaller peer name. Every replica evaluating
// the same peer set gets the same answer regardless of slice order,
// and removing one peer reassigns only that peer's keys — the
// highest-random-weight property that makes a static fleet rebalance
// minimally when the list changes. peers must be non-empty; Owner
// returns "" otherwise.
func Owner(peers []string, key string) string {
	var best string
	var bestScore uint64
	for _, p := range peers {
		s := score(p, key)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// Owners returns the first k peers of key's rendezvous order: every
// peer scored by fnv64a(peer || 0x00 || key), sorted by descending
// score with ties broken by the lexicographically smaller name. The
// order has two properties replicated ownership leans on: it is a pure
// function of (peer set, key) — every replica walks the same list —
// and it is prefix-stable, so Owners(peers, key, 1)[0] == Owner(peers,
// key) and raising the replication factor only appends owners, never
// reshuffles the ones already holding copies. k is clamped to the peer
// count; k <= 0 or an empty peer set returns nil.
func Owners(peers []string, key string, k int) []string {
	if len(peers) == 0 || k <= 0 {
		return nil
	}
	type scored struct {
		name string
		s    uint64
	}
	sc := make([]scored, len(peers))
	for i, p := range peers {
		sc[i] = scored{name: p, s: score(p, key)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].name < sc[j].name
	})
	if k > len(sc) {
		k = len(sc)
	}
	out := make([]string, k)
	for i := range out {
		out[i] = sc[i].name
	}
	return out
}

// score hashes one (peer, key) pair. FNV-64a is enough here: keys are
// already SHA-256 content hashes, so the input is uniformly
// distributed and the hash only needs to mix the peer name in.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
