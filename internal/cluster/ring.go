// Package cluster turns a set of memgazed replicas into one fleet: a
// static-peer ring assigns every trace id an owner replica by
// rendezvous hashing, a background prober tracks which peers are
// serving via their /v1/readyz endpoints, and a retrying proxy client
// forwards requests to owners. Ownership is a pure function of (peer
// set, trace id) — every replica configured with the same -peers list
// computes the same owner for every key, with no coordination, no
// gossip, and no persistent membership state. Trace ids are content
// hashes (the same bytes land at the same key on any replica), so
// routing by id is routing by content. See DESIGN.md ("Cluster
// routing").
package cluster

import (
	"hash/fnv"
)

// Owner returns the rendezvous-hash owner of key among peers: the peer
// whose score fnv64a(peer || 0x00 || key) is highest, ties broken by
// the lexicographically smaller peer name. Every replica evaluating
// the same peer set gets the same answer regardless of slice order,
// and removing one peer reassigns only that peer's keys — the
// highest-random-weight property that makes a static fleet rebalance
// minimally when the list changes. peers must be non-empty; Owner
// returns "" otherwise.
func Owner(peers []string, key string) string {
	var best string
	var bestScore uint64
	for _, p := range peers {
		s := score(p, key)
		if best == "" || s > bestScore || (s == bestScore && p < best) {
			best, bestScore = p, s
		}
	}
	return best
}

// score hashes one (peer, key) pair. FNV-64a is enough here: keys are
// already SHA-256 content hashes, so the input is uniformly
// distributed and the hash only needs to mix the peer name in.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}
