package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// contentID synthesises a trace-id-shaped key (hex SHA-256), the only
// key shape the ring ever sees in production.
func contentID(seed int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("trace-%d", seed)))
	return hex.EncodeToString(sum[:])
}

// TestOwnerDeterministicAndOrderFree pins the rendezvous core: the
// owner is a pure function of (peer set, key) and does not depend on
// the order the peers are listed in — the property that lets every
// replica route without coordination.
func TestOwnerDeterministicAndOrderFree(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8080",
		"http://10.0.0.2:8080",
		"http://10.0.0.3:8080",
	}
	shuffled := []string{peers[2], peers[0], peers[1]}
	for i := 0; i < 200; i++ {
		key := contentID(i)
		a := Owner(peers, key)
		if b := Owner(peers, key); b != a {
			t.Fatalf("Owner not deterministic: %s then %s", a, b)
		}
		if b := Owner(shuffled, key); b != a {
			t.Fatalf("Owner depends on peer order: %s vs %s", a, b)
		}
	}
	if Owner(nil, contentID(0)) != "" {
		t.Error("Owner of empty peer set should be empty")
	}
}

// TestOwnerDistribution checks that rendezvous hashing spreads
// content-hash keys across all peers — no peer starves, none hogs.
func TestOwnerDistribution(t *testing.T) {
	peers := []string{
		"http://a:1", "http://b:2", "http://c:3", "http://d:4",
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[Owner(peers, contentID(i))]++
	}
	for _, p := range peers {
		got := counts[p]
		// Expect n/4 = 1000 per peer; allow a wide 2x band — the test
		// pins "spread", not a exact balance statistic.
		if got < n/8 || got > n/2 {
			t.Errorf("peer %s owns %d of %d keys (counts %v)", p, got, n, counts)
		}
	}
}

// TestOwnerMinimalReassignment pins the highest-random-weight
// property: removing one peer reassigns only that peer's keys, every
// other key keeps its owner.
func TestOwnerMinimalReassignment(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	without := []string{"http://a:1", "http://c:3"}
	for i := 0; i < 1000; i++ {
		key := contentID(i)
		before := Owner(peers, key)
		after := Owner(without, key)
		if before != "http://b:2" && after != before {
			t.Fatalf("key %d moved from %s to %s though its owner was not removed", i, before, after)
		}
		if before == "http://b:2" && after == "http://b:2" {
			t.Fatalf("key %d still owned by the removed peer", i)
		}
	}
}

// TestNormalize pins address canonicalisation: scheme-less host:port
// and the full URL spelling identify the same peer.
func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"10.0.0.1:8080":            "http://10.0.0.1:8080",
		"http://10.0.0.1:8080":     "http://10.0.0.1:8080",
		"http://10.0.0.1:8080/":    "http://10.0.0.1:8080",
		" host:1 ":                 "http://host:1",
		"https://replica.internal": "https://replica.internal",
		"":                         "",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestOwnerStableUnderRandomKeys fuzzes a little: any hex string gets
// an owner from the set, never an empty answer with a non-empty set.
func TestOwnerStableUnderRandomKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	peers := []string{"http://x:1", "http://y:2"}
	set := map[string]bool{peers[0]: true, peers[1]: true}
	for i := 0; i < 500; i++ {
		b := make([]byte, 32)
		rng.Read(b)
		if o := Owner(peers, hex.EncodeToString(b)); !set[o] {
			t.Fatalf("owner %q is not in the peer set", o)
		}
	}
}

// TestOwnersTopK pins the replicated-ownership order: deterministic,
// order-free, prefix-stable (Owners(k)[0..k-2] == Owners(k-1), and the
// first entry is always Owner), clamped to the peer count, and made of
// distinct peers from the set.
func TestOwnersTopK(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8080",
		"http://10.0.0.2:8080",
		"http://10.0.0.3:8080",
		"http://10.0.0.4:8080",
	}
	shuffled := []string{peers[2], peers[0], peers[3], peers[1]}
	set := map[string]bool{}
	for _, p := range peers {
		set[p] = true
	}
	for i := 0; i < 300; i++ {
		key := contentID(i)
		full := Owners(peers, key, len(peers))
		if len(full) != len(peers) {
			t.Fatalf("full order has %d entries, want %d", len(full), len(peers))
		}
		seen := map[string]bool{}
		for _, o := range full {
			if !set[o] || seen[o] {
				t.Fatalf("full order %v repeats or leaves the peer set", full)
			}
			seen[o] = true
		}
		if full[0] != Owner(peers, key) {
			t.Fatalf("Owners(...)[0] = %s, Owner = %s", full[0], Owner(peers, key))
		}
		for k := 1; k <= len(peers); k++ {
			pre := Owners(peers, key, k)
			if len(pre) != k {
				t.Fatalf("Owners k=%d returned %d entries", k, len(pre))
			}
			for j := range pre {
				if pre[j] != full[j] {
					t.Fatalf("k=%d not a prefix of the full order: %v vs %v", k, pre, full)
				}
			}
		}
		if got := Owners(shuffled, key, 2); got[0] != full[0] || got[1] != full[1] {
			t.Fatalf("Owners depends on peer slice order: %v vs %v", got, full[:2])
		}
	}
	if got := Owners(peers, contentID(1), 99); len(got) != len(peers) {
		t.Errorf("k over the peer count not clamped: %d entries", len(got))
	}
	if Owners(peers, contentID(1), 0) != nil || Owners(nil, contentID(1), 2) != nil {
		t.Error("k <= 0 or an empty peer set should return nil")
	}
}
