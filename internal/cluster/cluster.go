package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PeerHeader marks a request as fleet-internal: the sending replica's
// advertise address. A replica receiving it serves the request locally
// — no re-routing, no scatter-gather — which both prevents proxy loops
// and gives the fan-out primitives a "just your own corpus" scope.
const PeerHeader = "X-Memgazed-Peer"

// ErrPeerDown is returned by Roundtrip when the target peer is marked
// down, without attempting the network. Callers map it (and transport
// failures) onto the peer_unavailable error contract.
var ErrPeerDown = errors.New("cluster: peer is down")

// Config parameterises a Cluster. Zero fields take the defaults noted.
type Config struct {
	// Self is this replica's own advertise address; it must appear in
	// Peers (addresses compare after normalisation, so "host:port" and
	// "http://host:port" are the same peer).
	Self string
	// Peers is the full static replica set, self included. Every
	// replica must be configured with the same set — ownership is a
	// pure function of it.
	Peers []string
	// Replication is how many replicas own each key: every trace is
	// written to the top-Replication peers of its rendezvous order and
	// reads fail over along that order (default 2; clamped to the peer
	// count; 1 reproduces the single-owner fast-fail ring).
	Replication int
	// ProbeInterval is the membership prober's period (default 2s;
	// <0 disables the background loop — ProbeNow still works, which is
	// what tests drive).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one readyz probe (default 1s).
	ProbeTimeout time.Duration
	// RequestTimeout bounds one proxied request end to end, all retries
	// included (default 60s — a proxied analyze runs a full engine
	// suite on the owner).
	RequestTimeout time.Duration
	// Retries is how many times a proxied request is re-sent after a
	// transport failure (default 2; the response statuses themselves
	// are never retried — an owner's 404 is the answer).
	Retries int
	// RetryBackoff is the base delay between retries, growing linearly
	// per attempt (default 50ms).
	RetryBackoff time.Duration
}

func (c *Config) applyDefaults() {
	if c.Replication == 0 {
		c.Replication = 2
	} else if c.Replication < 0 {
		c.Replication = 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
}

// Normalize canonicalises a peer address: "host:port" gains the http
// scheme, trailing slashes drop. Ownership and identity compare
// normalized strings, so every spelling of the same replica hashes the
// same.
func Normalize(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr != "" && !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/")
}

// peer is one replica's live membership state.
type peer struct {
	name        string      // normalized base URL; the ring identity
	up          atomic.Bool // last probe (or proxied request) verdict
	probeNanos  atomic.Int64
	probeFailed atomic.Uint64 // consecutive failed probes (observability)
}

// PeerStatus is one peer's state snapshot, rendered at /metrics.
type PeerStatus struct {
	Name         string
	Self         bool
	Up           bool
	ProbeLatency time.Duration
}

// Cluster is the fleet view of one replica: the static ring, live
// membership, and the proxy transport. All methods are safe for
// concurrent use.
type Cluster struct {
	cfg    Config
	self   string
	names  []string // sorted normalized peer names, self included
	peers  map[string]*peer
	client *http.Client

	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// New validates the peer set and starts the membership prober. Self
// must appear in Peers and the set needs at least two replicas to be a
// fleet (a one-entry set is accepted — it degenerates to every key
// self-owned — so a templated config can roll out one replica first).
func New(cfg Config) (*Cluster, error) {
	cfg.applyDefaults()
	self := Normalize(cfg.Self)
	if self == "" {
		return nil, errors.New("cluster: Self is required")
	}
	seen := make(map[string]*peer)
	var names []string
	for _, p := range cfg.Peers {
		n := Normalize(p)
		if n == "" {
			continue
		}
		if _, dup := seen[n]; dup {
			continue
		}
		pr := &peer{name: n}
		pr.up.Store(true) // optimistic: a fresh fleet serves immediately
		seen[n] = pr
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, errors.New("cluster: Peers is empty")
	}
	if _, ok := seen[self]; !ok {
		return nil, fmt.Errorf("cluster: Self %q is not in the peer set %v", self, names)
	}
	sort.Strings(names)
	if cfg.Replication > len(names) {
		cfg.Replication = len(names)
	}
	c := &Cluster{
		cfg:    cfg,
		self:   self,
		names:  names,
		peers:  seen,
		client: &http.Client{}, // per-request deadlines via context
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		go c.probeLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

// Self returns this replica's normalized advertise address.
func (c *Cluster) Self() string { return c.self }

// Peers returns the sorted normalized peer set, self included.
func (c *Cluster) Peers() []string { return c.names }

// Owner returns the replica leading key's rendezvous order — the
// primary owner. Ownership is static over the full configured set: a
// down peer still owns its keys, and callers fail over along Owners
// rather than rehashing onto replicas that never held the data.
func (c *Cluster) Owner(key string) string { return Owner(c.names, key) }

// Owners returns key's replica set: the first Replication peers of its
// rendezvous order. Every replica computes the same list in the same
// order, so writes fan out to it and reads walk it front to back —
// membership changes the peer *answering*, never the set *owning*.
func (c *Cluster) Owners(key string) []string {
	return Owners(c.names, key, c.cfg.Replication)
}

// Replication returns the ownership factor: how many replicas hold
// each key (clamped to the peer count at construction).
func (c *Cluster) Replication() int { return c.cfg.Replication }

// IsSelf reports whether the (normalized) peer name is this replica.
func (c *Cluster) IsSelf(name string) bool { return Normalize(name) == c.self }

// Up reports whether peer is currently believed to be serving. Self is
// always up.
func (c *Cluster) Up(name string) bool {
	if p, ok := c.peers[Normalize(name)]; ok {
		return p.up.Load()
	}
	return false
}

// UpPeers returns the sorted up peers excluding self — the
// scatter-gather fan-out set.
func (c *Cluster) UpPeers() []string {
	var out []string
	for _, n := range c.names {
		if n != c.self && c.peers[n].up.Load() {
			out = append(out, n)
		}
	}
	return out
}

// Status snapshots every peer's membership state in name order.
func (c *Cluster) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.names))
	for _, n := range c.names {
		p := c.peers[n]
		out = append(out, PeerStatus{
			Name:         n,
			Self:         n == c.self,
			Up:           p.up.Load(),
			ProbeLatency: time.Duration(p.probeNanos.Load()),
		})
	}
	return out
}

// Close stops the membership prober.
func (c *Cluster) Close() {
	c.once.Do(func() { close(c.quit) })
	<-c.done
}

func (c *Cluster) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// ProbeNow runs one synchronous probe round: every peer but self gets
// a GET /v1/readyz under the probe timeout; 200 marks it up, anything
// else (including transport failure) marks it down. A recovered peer
// rejoins here — no restart, no operator action.
func (c *Cluster) ProbeNow() {
	var wg sync.WaitGroup
	for _, n := range c.names {
		if n == c.self {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			c.probe(p)
		}(c.peers[n])
	}
	wg.Wait()
}

func (c *Cluster) probe(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.name+"/v1/readyz", nil)
	if err != nil {
		p.up.Store(false)
		p.probeFailed.Add(1)
		return
	}
	req.Header.Set(PeerHeader, c.self)
	t0 := time.Now()
	resp, err := c.client.Do(req)
	p.probeNanos.Store(time.Since(t0).Nanoseconds())
	if err != nil {
		p.up.Store(false)
		p.probeFailed.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		p.up.Store(true)
		p.probeFailed.Store(0)
	} else {
		p.up.Store(false)
		p.probeFailed.Add(1)
	}
}

// Roundtrip sends one fleet-internal request to peer: method against
// path (which may carry a query string), hdr copied onto the request,
// body replayed on each retry. Transport failures retry with linear
// backoff under the overall request timeout; any HTTP response —
// including errors — is returned as-is, because the owner's 404 or 410
// IS the answer. A peer already marked down fails fast with
// ErrPeerDown; a final transport failure marks the peer down (the
// prober brings it back), and any response marks it up. The caller
// owns resp.Body.
func (c *Cluster) Roundtrip(ctx context.Context, peerName, method, path string, hdr http.Header, body []byte) (*http.Response, error) {
	p, ok := c.peers[Normalize(peerName)]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %q", peerName)
	}
	if !p.up.Load() {
		return nil, ErrPeerDown
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				cancel()
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * c.cfg.RetryBackoff):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, p.name+path, rd)
		if err != nil {
			cancel()
			return nil, err
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		req.Header.Set(PeerHeader, c.self)
		resp, err := c.client.Do(req)
		if err == nil {
			p.up.Store(true)
			// The response body must outlive this call; tie the timeout
			// to its closure so the deadline still bounds slow reads.
			resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // deadline or caller cancellation: retrying is pointless
		}
	}
	cancel()
	p.up.Store(false)
	return nil, fmt.Errorf("cluster: peer %s: %w", p.name, lastErr)
}

// cancelBody releases the request's timeout context when the response
// body is closed.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}
