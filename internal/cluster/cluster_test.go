package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newTestCluster builds a 2-replica cluster where "self" is a fake
// address (never dialled) and the other peer is an httptest server.
func newTestCluster(t *testing.T, peerURL string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = "http://self.invalid:1"
	cfg.Peers = []string{cfg.Self, peerURL}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive ProbeNow explicitly
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestConfigValidation: self must be in the peer set; spellings
// normalize before comparing.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "", Peers: []string{"a:1"}}); err == nil {
		t.Error("empty Self accepted")
	}
	if _, err := New(Config{Self: "a:1", Peers: []string{"b:2"}}); err == nil {
		t.Error("Self outside the peer set accepted")
	}
	c, err := New(Config{
		Self:          "10.0.0.1:8080",
		Peers:         []string{"http://10.0.0.1:8080/", "10.0.0.2:8080"},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatalf("normalized self spelling rejected: %v", err)
	}
	defer c.Close()
	if c.Self() != "http://10.0.0.1:8080" {
		t.Errorf("Self = %q", c.Self())
	}
	if got := len(c.Peers()); got != 2 {
		t.Errorf("peer set size = %d, want 2 (deduped, normalized)", got)
	}
	if !c.IsSelf("10.0.0.1:8080") || c.IsSelf("10.0.0.2:8080") {
		t.Error("IsSelf does not normalize")
	}
}

// TestProbeMarksDownAndUp drives the membership lifecycle: a serving
// peer stays up, a 503 readyz marks it down, recovery marks it up
// again — all without restarting anything.
func TestProbeMarksDownAndUp(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/readyz" {
			t.Errorf("probe hit %s, want /v1/readyz", r.URL.Path)
		}
		if r.Header.Get(PeerHeader) == "" {
			t.Error("probe missing the internal peer header")
		}
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer hs.Close()

	c := newTestCluster(t, hs.URL, Config{})
	peer := Normalize(hs.URL)
	if !c.Up(peer) {
		t.Fatal("fresh peer should start optimistic-up")
	}

	c.ProbeNow()
	if !c.Up(peer) {
		t.Fatal("healthy peer marked down")
	}
	if got := c.UpPeers(); len(got) != 1 || got[0] != peer {
		t.Fatalf("UpPeers = %v", got)
	}

	ready.Store(false)
	c.ProbeNow()
	if c.Up(peer) {
		t.Fatal("unready peer still up after probe")
	}
	if got := c.UpPeers(); len(got) != 0 {
		t.Fatalf("UpPeers after down = %v", got)
	}

	ready.Store(true)
	c.ProbeNow()
	if !c.Up(peer) {
		t.Fatal("recovered peer did not rejoin")
	}
	st := c.Status()
	if len(st) != 2 {
		t.Fatalf("Status has %d peers", len(st))
	}
	for _, s := range st {
		if s.Name == peer && s.ProbeLatency <= 0 {
			t.Error("probe latency not recorded")
		}
	}
}

// TestRoundtripRelaysAndMarks: responses (errors included) come back
// verbatim; a dead peer fails fast once marked down; retries survive
// a transient connection failure.
func TestRoundtripRelays(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Header.Get(PeerHeader) != "http://self.invalid:1" {
			t.Errorf("peer header = %q", r.Header.Get(PeerHeader))
		}
		if r.URL.Path == "/v1/traces/x" {
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":{"code":"trace_not_found","message":"x"}}`)
			return
		}
		b, _ := io.ReadAll(r.Body)
		w.WriteHeader(http.StatusOK)
		w.Write(b)
	}))
	defer hs.Close()
	c := newTestCluster(t, hs.URL, Config{RetryBackoff: time.Millisecond})
	peer := Normalize(hs.URL)

	// A body echoes through; headers ride along.
	resp, err := c.Roundtrip(context.Background(), peer, http.MethodPost, "/echo",
		http.Header{"Content-Type": []string{"application/json"}}, []byte("payload"))
	if err != nil {
		t.Fatalf("Roundtrip: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "payload" {
		t.Fatalf("echo = %q", b)
	}

	// An HTTP error status is the answer, not a retry trigger.
	before := hits.Load()
	resp, err = c.Roundtrip(context.Background(), peer, http.MethodGet, "/v1/traces/x", nil, nil)
	if err != nil {
		t.Fatalf("Roundtrip(404): %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if hits.Load() != before+1 {
		t.Fatalf("a 404 was retried: %d extra requests", hits.Load()-before-1)
	}
}

// TestRoundtripDeadPeer: transport failure marks the peer down and
// the next call fails fast with ErrPeerDown, no dialling.
func TestRoundtripDeadPeer(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := hs.URL
	hs.Close() // nothing listens any more

	c := newTestCluster(t, url, Config{Retries: 1, RetryBackoff: time.Millisecond})
	peer := Normalize(url)
	if _, err := c.Roundtrip(context.Background(), peer, http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("roundtrip to a dead peer succeeded")
	}
	if c.Up(peer) {
		t.Fatal("dead peer still marked up after transport failure")
	}
	_, err := c.Roundtrip(context.Background(), peer, http.MethodGet, "/x", nil, nil)
	if err != ErrPeerDown {
		t.Fatalf("second call error = %v, want ErrPeerDown", err)
	}
	if _, err := c.Roundtrip(context.Background(), "http://never-configured:1", http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("unknown peer accepted")
	}
}

// TestBackgroundProber: the loop itself probes without ProbeNow.
func TestBackgroundProber(t *testing.T) {
	var probes atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
	}))
	defer hs.Close()
	c := newTestCluster(t, hs.URL, Config{ProbeInterval: 5 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for probes.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c.Close()
	if probes.Load() < 2 {
		t.Fatalf("background prober made %d probes", probes.Load())
	}
}

// TestReplicationClampAndOwners pins the replication factor plumbing:
// the default is 2, negatives collapse to 1, the factor clamps to the
// peer set size, and Cluster.Owners honours it with the self-consistent
// rendezvous order (first entry == Owner).
func TestReplicationClampAndOwners(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	mk := func(replication int) *Cluster {
		t.Helper()
		c, err := New(Config{Self: peers[0], Peers: peers, Replication: replication, ProbeInterval: -1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(c.Close)
		return c
	}
	if got := mk(0).Replication(); got != 2 {
		t.Errorf("default replication = %d, want 2", got)
	}
	if got := mk(-5).Replication(); got != 1 {
		t.Errorf("negative replication = %d, want 1", got)
	}
	if got := mk(99).Replication(); got != len(peers) {
		t.Errorf("oversized replication = %d, want clamp to %d", got, len(peers))
	}
	c := mk(2)
	key := "deadbeef"
	owners := c.Owners(key)
	if len(owners) != 2 {
		t.Fatalf("Owners returned %d peers, want 2", len(owners))
	}
	if owners[0] != c.Owner(key) {
		t.Errorf("Owners[0] = %s, Owner = %s", owners[0], c.Owner(key))
	}
	if owners[0] == owners[1] {
		t.Error("Owners repeats a peer")
	}
}
