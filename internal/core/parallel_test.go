package core

import (
	"math"
	"testing"

	"github.com/memgaze/memgaze-go/internal/workloads/darknet"
	"github.com/memgaze/memgaze-go/internal/workloads/gap"
	"github.com/memgaze/memgaze-go/internal/workloads/sites"
)

func TestParallelPRSpmvMatchesSerial(t *testing.T) {
	serial := gap.New(gap.Config{Scale: 9, Algo: gap.PRSpmv}, true)
	sr := sites.NewRunner(DefaultConfig().Costs, nil, false)
	serial.Run(sr)

	par := gap.New(gap.Config{Scale: 9, Algo: gap.PRSpmv}, true)
	cfg := DefaultConfig()
	cfg.Period = 10_000
	res, err := RunAppParallel(ParallelApp{
		Name: par.Name(), Mod: par.Mod,
		Exec: func(rs []*sites.Runner) { par.RunParallel(rs) },
	}, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Numerics identical: Jacobi parallelism is deterministic.
	if par.PRIterations != serial.PRIterations {
		t.Errorf("iterations: parallel %d vs serial %d", par.PRIterations, serial.PRIterations)
	}
	for v := range serial.Scores {
		if math.Abs(par.Scores[v]-serial.Scores[v]) > 1e-12 {
			t.Fatalf("score %d diverged: %v vs %v", v, par.Scores[v], serial.Scores[v])
		}
	}

	// Work parity: total loads across workers match the serial run up to
	// a handful of implied constants at partition boundaries (clone
	// cursor phase), well under 0.1%.
	diff := int64(res.Stats.Loads) - int64(sr.Stats().Loads)
	if diff < 0 {
		diff = -diff
	}
	if diff*1000 > int64(sr.Stats().Loads) {
		t.Errorf("parallel loads %d vs serial %d", res.Stats.Loads, sr.Stats().Loads)
	}
	// Wall-clock cycles benefit from parallelism.
	if res.BaseStats.Cycles >= sr.Stats().Cycles {
		t.Errorf("parallel wall clock %d not below serial %d", res.BaseStats.Cycles, sr.Stats().Cycles)
	}

	// Merged trace carries samples from multiple workers.
	cpus := map[int]bool{}
	for _, s := range res.Trace.AllSamples() {
		cpus[s.CPU] = true
	}
	if len(cpus) < 2 {
		t.Errorf("merged trace covers %d CPUs, want >1", len(cpus))
	}
	if res.Decode.OrphanEvents > 0 {
		t.Errorf("orphans: %d", res.Decode.OrphanEvents)
	}
	// Merged samples are ordered by trigger progress.
	for i := 1; i < res.Trace.NumSamples(); i++ {
		if res.Trace.SampleAt(i).TriggerLoads < res.Trace.SampleAt(i-1).TriggerLoads {
			t.Fatal("merged samples not ordered")
		}
	}
}

func TestParallelDarknet(t *testing.T) {
	w := darknet.New(darknet.Config{Model: darknet.AlexNet, Shrink: 32})
	cfg := DefaultConfig()
	cfg.Period = 3_000
	res, err := RunAppParallel(ParallelApp{
		Name: w.Name(), Mod: w.Mod,
		Exec: func(rs []*sites.Runner) { w.RunParallel(rs) },
	}, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The serial run on one worker must do the same total work.
	w2 := darknet.New(darknet.Config{Model: darknet.AlexNet, Shrink: 32})
	r := sites.NewRunner(DefaultConfig().Costs, nil, false)
	w2.Run(r)
	// Dynamic loads and stores are identical; implied-constant counts
	// may differ by a few per worker (clone-cursor phase at partition
	// boundaries), so allow a small tolerance on loads.
	diff := int64(res.BaseStats.Loads) - int64(r.Stats().Loads)
	if diff < 0 {
		diff = -diff
	}
	if diff > 24 || res.BaseStats.Stores != r.Stats().Stores {
		t.Errorf("parallel work %d/%d vs serial %d/%d",
			res.BaseStats.Loads, res.BaseStats.Stores, r.Stats().Loads, r.Stats().Stores)
	}
	if res.Trace.NumRecords() == 0 {
		t.Error("no records collected in parallel mode")
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	w := gap.New(gap.Config{Scale: 8, Algo: gap.CC}, true)
	cfg := DefaultConfig()
	cfg.Period = 5_000
	res, err := RunAppParallel(ParallelApp{
		Name: w.Name(), Mod: w.Mod,
		Exec: func(rs []*sites.Runner) { w.RunParallel(rs) },
	}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumRecords() == 0 {
		t.Error("single-worker fallback produced no trace")
	}
}
