package core

import (
	"testing"

	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/workloads/micro"
)

func microWL(spec micro.Spec) Workload {
	return FuncWorkload{WName: spec.Name(), BuildFn: spec.Build}
}

func TestPipelineStr(t *testing.T) {
	spec := micro.Spec{Pattern: micro.Str{Step: 1, Accesses: 2000}, Reps: 20, Opt: micro.O3}
	cfg := DefaultConfig()
	cfg.Period = 10_000
	cfg.BufBytes = 16 << 10
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumSamples() == 0 {
		t.Fatal("no samples collected")
	}
	t.Logf("samples=%d records=%d meanW=%.0f rho=%.1f kappa=%.3f overhead=%.1f%% ptwRatio=%.3f",
		res.Trace.NumSamples(), res.Trace.NumRecords(), res.Trace.MeanW(),
		res.Trace.Rho(), res.Trace.Kappa(), 100*res.Overhead(), res.PTWriteRatio())
	t.Logf("decode: %+v", res.Decode)
	if res.Decode.OrphanEvents > 0 {
		t.Errorf("orphan events: %d", res.Decode.OrphanEvents)
	}
	// All non-constant records of a pure strided benchmark must be
	// classified Strided.
	for _, s := range res.Trace.AllSamples() {
		for _, r := range s.Records {
			if r.Proc == "str1_0" && r.Class == dataflow.Irregular {
				t.Fatalf("strided benchmark produced irregular record: %+v", r)
			}
		}
	}
	k := res.Trace.Kappa()
	if k < 1.15 || k > 1.30 {
		t.Errorf("O3 kappa = %.3f, want ≈1.2", k)
	}
}

func TestPipelineIrrO0(t *testing.T) {
	spec := micro.Spec{Pattern: micro.Irr{Accesses: 2000}, Reps: 20, Opt: micro.O0}
	cfg := DefaultConfig()
	cfg.Period = 10_000
	cfg.BufBytes = 16 << 10
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := res.Trace.Kappa()
	if k < 1.8 || k > 2.2 {
		t.Errorf("O0 kappa = %.3f, want ≈2", k)
	}
	var irr, str int
	for _, s := range res.Trace.AllSamples() {
		for _, r := range s.Records {
			switch r.Class {
			case dataflow.Irregular:
				irr++
			case dataflow.Strided:
				str++
			}
		}
	}
	if irr == 0 {
		t.Fatal("no irregular records in irr benchmark")
	}
	if str > irr/10 {
		t.Errorf("unexpected strided records in irr benchmark: str=%d irr=%d", str, irr)
	}
}

func TestPipelineFullTrace(t *testing.T) {
	spec := micro.Spec{Pattern: micro.Str{Step: 1, Accesses: 500}, Reps: 5, Opt: micro.O3}
	cfg := DefaultConfig()
	cfg.Mode = pt.ModeFull
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Trace.NumRecords()
	// 500 accesses (rounded to unroll) × 5 reps of strided loads, minus
	// constant proxies folded in, minus drops.
	if n == 0 {
		t.Fatal("full trace empty")
	}
	t.Logf("full: records=%d dropped=%d loads=%d", n, res.Trace.DroppedEvents, res.Trace.TotalLoads)
	if uint64(n)+res.Trace.DroppedEvents < 2500 {
		t.Errorf("full trace too small: %d records + %d dropped", n, res.Trace.DroppedEvents)
	}
}
