package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/memgaze/memgaze-go/internal/analysis"

	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/workloads/micro"
	"github.com/memgaze/memgaze-go/internal/workloads/minivite"
	"github.com/memgaze/memgaze-go/internal/workloads/sites"
)

func seriesSpec() micro.Spec {
	return micro.Spec{
		Pattern: micro.Series{
			A: micro.Str{Step: 1, Accesses: 1000},
			B: micro.Irr{Accesses: 1000},
		},
		Reps: 20, Opt: micro.O3,
	}
}

func TestSelectiveInstrumentationROI(t *testing.T) {
	spec := seriesSpec()
	cfg := DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 16 << 10
	cfg.ROI = []string{"str1_0"} // instrument only the strided leaf
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumRecords() == 0 {
		t.Fatal("no records")
	}
	for _, s := range res.Trace.AllSamples() {
		for _, r := range s.Records {
			if r.Proc != "str1_0" {
				t.Fatalf("record from outside ROI: %q", r.Proc)
			}
		}
	}
}

func TestHardwareGuardsLimitTracing(t *testing.T) {
	spec := seriesSpec()
	cfg := DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 16 << 10
	cfg.HWFilterProcs = []string{"irr_1"}
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumRecords() == 0 {
		t.Fatal("no records")
	}
	for _, s := range res.Trace.AllSamples() {
		for _, r := range s.Records {
			if r.Proc != "irr_1" {
				t.Fatalf("hardware guard leaked proc %q", r.Proc)
			}
		}
	}
	// Unlike re-instrumentation, the binary is fully instrumented: the
	// masking happened in hardware, visible as masked ptwrites.
	if res.Stats.PTWMasked == 0 {
		t.Error("expected masked ptwrites outside the guard range")
	}
}

func TestOptModeReducesOverheadAndRecords(t *testing.T) {
	spec := seriesSpec()
	cont := DefaultConfig()
	cont.Period = 5_000
	cont.BufBytes = 16 << 10
	rc, err := Run(microWL(spec), cont)
	if err != nil {
		t.Fatal(err)
	}
	opt := cont
	opt.Mode = pt.ModeSampledPT
	ro, err := Run(microWL(spec), opt)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Overhead() >= rc.Overhead() {
		t.Errorf("opt overhead %.3f not below continuous %.3f", ro.Overhead(), rc.Overhead())
	}
	if ro.Stats.PTWrites >= rc.Stats.PTWrites {
		t.Errorf("opt recorded %d ptwrites, continuous %d", ro.Stats.PTWrites, rc.Stats.PTWrites)
	}
	if ro.Trace.NumSamples() == 0 {
		t.Error("opt mode produced no samples")
	}
	// Samples still carry full windows (85-100% readable).
	if ro.Trace.MeanW() < rc.Trace.MeanW() {
		t.Errorf("opt mean w %.0f below continuous %.0f", ro.Trace.MeanW(), rc.Trace.MeanW())
	}
}

func TestTraceFileRoundtripThroughPipeline(t *testing.T) {
	spec := seriesSpec()
	cfg := DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 16 << 10
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.mgt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := trace.Read(rf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != res.Trace.NumRecords() ||
		got.Kappa() != res.Trace.Kappa() ||
		got.TotalLoads != res.Trace.TotalLoads {
		t.Error("trace changed across serialization")
	}
}

func TestAppPipelineParityWithIR(t *testing.T) {
	// The app pipeline must produce traces with the same structural
	// invariants the IR pipeline guarantees.
	w := minivite.New(minivite.Config{Scale: 8, Variant: minivite.V2}, true)
	cfg := DefaultConfig()
	cfg.Period = 10_000
	res, err := RunApp(App{
		Name: w.Name(), Mod: w.Mod,
		Exec: func(r *sites.Runner) { w.Run(r) },
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decode.OrphanEvents > 0 {
		t.Errorf("orphan events: %d", res.Decode.OrphanEvents)
	}
	if res.Trace.TotalLoads != res.Stats.Loads {
		t.Errorf("load counter mismatch: trace %d vs stats %d",
			res.Trace.TotalLoads, res.Stats.Loads)
	}
	// Records never exceed recorded events; each record consumed 1-2
	// events.
	if ev, rec := int(res.Trace.RecordedEvents), res.Trace.NumRecords(); rec > ev {
		t.Errorf("records %d exceed events %d", rec, ev)
	}
	// Phase marks from both runs agree in names.
	if len(res.Phases) != len(res.BasePhases) {
		t.Fatalf("phase count mismatch: %d vs %d", len(res.Phases), len(res.BasePhases))
	}
	for i := range res.Phases {
		if res.Phases[i].Name != res.BasePhases[i].Name {
			t.Errorf("phase %d name mismatch", i)
		}
	}
	// Baseline and traced runs perform identical algorithmic work.
	if res.Stats.Loads != res.BaseStats.Loads || res.Stats.Stores != res.BaseStats.Stores {
		t.Errorf("work diverged: loads %d/%d stores %d/%d",
			res.Stats.Loads, res.BaseStats.Loads, res.Stats.Stores, res.BaseStats.Stores)
	}
}

func TestSampleWindowsWithinBufferCapacity(t *testing.T) {
	spec := seriesSpec()
	cfg := DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 8 << 10
	res, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A record consumes ≥ 4 bytes encoded; the buffer bounds w.
	maxW := cfg.BufBytes / 4
	for _, s := range res.Trace.AllSamples() {
		if len(s.Records) > maxW {
			t.Errorf("sample %d has %d records, impossible for %d B buffer",
				s.Seq, len(s.Records), cfg.BufBytes)
		}
	}
}

// TestHotspotROIFlow exercises the §II two-step workflow: trace broadly,
// derive a region of interest from hotspots, then retrace with PT
// hardware guards limited to that ROI — no re-instrumentation.
func TestHotspotROIFlow(t *testing.T) {
	spec := seriesSpec()
	cfg := DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 16 << 10
	broad, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	roi := analysis.SuggestROI(broad.Trace, 45)
	if len(roi) != 1 {
		t.Fatalf("ROI@45 = %v, want the single hottest leaf", roi)
	}
	cfg.HWFilterProcs = roi
	focused, err := Run(microWL(spec), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range focused.Trace.AllSamples() {
		for _, r := range s.Records {
			if r.Proc != roi[0] {
				t.Fatalf("record outside ROI: %q", r.Proc)
			}
		}
	}
	// The focused trace still observes the ROI's behaviour.
	if focused.Trace.NumRecords() == 0 {
		t.Fatal("focused trace empty")
	}
}
