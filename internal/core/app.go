package core

import (
	"context"
	"fmt"
	"time"

	"github.com/memgaze/memgaze-go/internal/cache"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/vm"
	"github.com/memgaze/memgaze-go/internal/workloads/sites"
)

// App is a sites-based application workload: a frozen module plus an
// execution function. Exec must be deterministic across calls — the
// pipeline runs it twice (baseline and traced).
type App struct {
	Name string
	Mod  *sites.Module
	Exec func(r *sites.Runner)
	// CacheCfg, when non-nil, prices loads/stores through the cache
	// timing model (fresh instance per run).
	CacheCfg *cache.Config
}

// AppResult is the outcome of one application pipeline run.
type AppResult struct {
	Workload string
	Config   Config

	Trace     *trace.Trace
	Decode    pt.DecodeStats
	Stats     vm.Stats // instrumented + traced run
	BaseStats vm.Stats // uninstrumented baseline

	Phases     []sites.PhaseMark // from the traced run
	BasePhases []sites.PhaseMark // from the baseline run

	CollectTime time.Duration
	BuildTime   time.Duration
}

// Overhead returns cycles(traced)/cycles(baseline) − 1.
func (r *AppResult) Overhead() float64 {
	if r.BaseStats.Cycles == 0 {
		return 0
	}
	return float64(r.Stats.Cycles)/float64(r.BaseStats.Cycles) - 1
}

// PTWriteRatio returns executed ptwrites per non-ptwrite instruction.
func (r *AppResult) PTWriteRatio() float64 {
	ptw := r.Stats.PTWrites + r.Stats.PTWMasked
	rest := r.Stats.Instrs - ptw
	if rest == 0 {
		return 0
	}
	return float64(ptw) / float64(rest)
}

// PhaseOverheads pairs up phase marks from the baseline and traced runs
// and returns per-phase overhead fractions keyed by phase name. A phase
// spans from its mark to the next mark (or end of run).
func (r *AppResult) PhaseOverheads() map[string]float64 {
	spans := func(marks []sites.PhaseMark, total vm.Stats) map[string]uint64 {
		out := make(map[string]uint64, len(marks))
		for i, m := range marks {
			endCycles := total.Cycles
			if i+1 < len(marks) {
				endCycles = marks[i+1].Stats.Cycles
			}
			out[m.Name] = endCycles - m.Stats.Cycles
		}
		return out
	}
	base := spans(r.BasePhases, r.BaseStats)
	traced := spans(r.Phases, r.Stats)
	out := make(map[string]float64)
	for name, tc := range traced {
		if bc := base[name]; bc > 0 {
			out[name] = float64(tc)/float64(bc) - 1
		}
	}
	return out
}

// PhasePtwRatios returns executed ptwrites per non-ptwrite instruction
// for each phase of the traced run — Fig. 7's red correlation series at
// phase granularity.
func (r *AppResult) PhasePtwRatios() map[string]float64 {
	out := make(map[string]float64, len(r.Phases))
	for i, m := range r.Phases {
		end := r.Stats
		if i+1 < len(r.Phases) {
			end = r.Phases[i+1].Stats
		}
		ptw := (end.PTWrites + end.PTWMasked) - (m.Stats.PTWrites + m.Stats.PTWMasked)
		instr := end.Instrs - m.Stats.Instrs
		if instr > ptw {
			out[m.Name] = float64(ptw) / float64(instr-ptw)
		}
	}
	return out
}

// RunApp executes the application pipeline: baseline run, traced run
// under the configured collector, and trace building.
func RunApp(app App, cfg Config) (*AppResult, error) {
	if cfg.Costs == (vm.CostModel{}) {
		cfg.Costs = vm.DefaultCosts()
	}
	res := &AppResult{Workload: app.Name, Config: cfg}

	newCache := func() *cache.Cache {
		if app.CacheCfg == nil {
			return nil
		}
		return cache.New(*app.CacheCfg)
	}

	// Baseline: uninstrumented binary, no tracing. Group rotations are
	// reset before each execution so both runs perform identical loads.
	app.Mod.ResetGroups()
	base := sites.NewRunner(cfg.Costs, nil, false)
	base.Cache = newCache()
	app.Exec(base)
	res.BaseStats = base.Stats()
	res.BasePhases = base.Phases()

	pcfg := pt.Config{
		Mode:              cfg.Mode,
		Period:            cfg.Period,
		BufBytes:          cfg.BufBytes,
		CopyBytesPerCycle: cfg.CopyBytesPerCycle,
		Seed:              cfg.Seed,
	}
	if len(cfg.HWFilterProcs) > 0 {
		lo := ^uint64(0)
		hi := uint64(0)
		for _, name := range cfg.HWFilterProcs {
			plo, phi, err := app.Mod.ProcRange(name)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", app.Name, err)
			}
			if plo < lo {
				lo = plo
			}
			if phi > hi {
				hi = phi
			}
		}
		pcfg.FilterLo, pcfg.FilterHi = lo, hi
	}
	col := pt.NewCollector(pcfg)

	t0 := time.Now()
	app.Mod.ResetGroups()
	run := sites.NewRunner(cfg.Costs, col, true)
	run.Cache = newCache()
	app.Exec(run)
	res.Stats = run.Stats()
	res.Phases = run.Phases()
	res.CollectTime = time.Since(t0)

	t0 = time.Now()
	tr, ds, err := pt.NewBuilder(col, app.Mod.Notes(),
		pt.WithWorkers(cfg.BuildWorkers)).Build(context.Background())
	if err != nil {
		return nil, fmt.Errorf("core: build trace %s: %w", app.Name, err)
	}
	res.Trace, res.Decode = tr, ds
	res.BuildTime = time.Since(t0)
	return res, nil
}
