package core

import (
	"context"
	"fmt"
	"time"

	"github.com/memgaze/memgaze-go/internal/cache"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/vm"
	"github.com/memgaze/memgaze-go/internal/workloads/sites"
)

// ParallelApp is a sites-based workload that can execute across several
// workers, each with its own Runner (and therefore its own cache and
// per-CPU trace collector, the way PT keeps per-CPU buffers). Exec must
// partition the work across the runners it is handed and is responsible
// for its own synchronisation; runner w must only be used from worker w.
type ParallelApp struct {
	Name     string
	Mod      *sites.Module
	Exec     func(workers []*sites.Runner)
	CacheCfg *cache.Config
}

// RunAppParallel executes the workload on `workers` workers twice —
// uninstrumented baseline and traced — then merges the per-worker traces
// (the perf step that merges per-CPU PT buffers). Run-time statistics
// are summed across workers except Cycles, which is the maximum (the
// wall-clock of the slowest worker).
func RunAppParallel(app ParallelApp, cfg Config, workers int) (*AppResult, error) {
	if workers < 1 {
		workers = 1
	}
	if cfg.Costs == (vm.CostModel{}) {
		cfg.Costs = vm.DefaultCosts()
	}
	res := &AppResult{Workload: app.Name, Config: cfg}

	newRunners := func(instrumented bool, cols []*pt.Collector) []*sites.Runner {
		rs := make([]*sites.Runner, workers)
		for w := 0; w < workers; w++ {
			var sink vm.Sink
			if cols != nil {
				sink = cols[w]
			}
			rs[w] = sites.NewRunner(cfg.Costs, sink, instrumented)
			if app.CacheCfg != nil {
				rs[w].Cache = cache.New(*app.CacheCfg)
			}
		}
		return rs
	}
	// The workload partitions internally; Exec blocks until all workers
	// finish.
	exec := func(rs []*sites.Runner) { app.Exec(rs) }
	aggregate := func(rs []*sites.Runner) vm.Stats {
		var total vm.Stats
		for _, r := range rs {
			s := r.Stats()
			total.Instrs += s.Instrs
			total.Loads += s.Loads
			total.Stores += s.Stores
			total.PTWrites += s.PTWrites
			total.PTWMasked += s.PTWMasked
			total.Calls += s.Calls
			total.StallCycle += s.StallCycle
			if s.Cycles > total.Cycles {
				total.Cycles = s.Cycles // wall clock = slowest worker
			}
		}
		return total
	}

	// Baseline.
	base := newRunners(false, nil)
	exec(base)
	res.BaseStats = aggregate(base)
	res.BasePhases = base[0].Phases()

	// Traced: one collector per worker.
	cols := make([]*pt.Collector, workers)
	for w := range cols {
		pcfg := pt.Config{
			Mode:              cfg.Mode,
			Period:            cfg.Period,
			BufBytes:          cfg.BufBytes,
			CopyBytesPerCycle: cfg.CopyBytesPerCycle,
			Seed:              cfg.Seed + uint64(w)*0x9e37,
		}
		cols[w] = pt.NewCollector(pcfg)
	}
	t0 := time.Now()
	traced := newRunners(true, cols)
	exec(traced)
	res.Stats = aggregate(traced)
	res.Phases = traced[0].Phases()
	res.CollectTime = time.Since(t0)

	// Merge per-CPU traces: each worker's build itself fans out across
	// the pool, so the per-CPU loop stays sequential here.
	t0 = time.Now()
	parts := make([]*trace.Trace, workers)
	for w, col := range cols {
		part, ds, err := pt.NewBuilder(col, app.Mod.Notes(),
			pt.WithWorkers(cfg.BuildWorkers)).Build(context.Background())
		if err != nil {
			return nil, fmt.Errorf("core: build trace %s cpu %d: %w", app.Name, w, err)
		}
		parts[w] = part
		res.Decode.Add(ds)
	}
	res.Trace = trace.Merge(parts)
	res.BuildTime = time.Since(t0)
	return res, nil
}
