// Package core is MemGaze-Go's toolchain driver: it wires the pipeline
// of Fig. 1 — static analysis + binary instrumentation (Step 1), sampled
// trace collection on the simulated machine (Step 2), trace building
// (Analysis/1), and hands the result to the analyses of internal/analysis,
// internal/interval, internal/zoom and internal/heatmap (Analysis/2).
//
// The package is the programmatic API used by cmd/memgaze, the examples,
// and the benchmark harness.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/instrument"
	"github.com/memgaze/memgaze-go/internal/isa"
	"github.com/memgaze/memgaze-go/internal/mem"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/vm"
)

// Workload builds a fresh program + address space pair. Build must be
// deterministic: the toolchain builds twice to compare instrumented and
// uninstrumented executions on identical inputs.
type Workload interface {
	Name() string
	Build() (*isa.Program, *mem.Space, error)
}

// Config selects the collection regime and instrumentation scope.
type Config struct {
	// Mode is the collection regime (continuous MemGaze, MemGaze-opt,
	// or full tracing).
	Mode pt.Mode
	// Period is the sampling period w+z in loads.
	Period uint64
	// BufBytes is the hardware trace-buffer size.
	BufBytes int
	// ROI selectively instruments only these procedures (Step 1 scoping).
	ROI []string
	// HWFilterProcs scopes tracing with PT's hardware address guards
	// instead of re-instrumentation (Step 2 scoping).
	HWFilterProcs []string
	// CompressConstants toggles §III-B trace compression (default on via
	// DefaultConfig).
	CompressConstants bool
	// BuildWorkers bounds the samples decoded concurrently during trace
	// building (0 selects GOMAXPROCS).
	BuildWorkers int
	// CopyBytesPerCycle models kernel copy bandwidth (0 = default).
	CopyBytesPerCycle float64
	// Costs is the machine cost model (zero value = DefaultCosts).
	Costs vm.CostModel
	// Seed perturbs collection jitter deterministically.
	Seed uint64
	// MaxInstrs bounds execution (0 = unlimited).
	MaxInstrs uint64
}

// DefaultConfig returns a typical application configuration: continuous
// mode, 5M-load period, 8 KiB buffer, compression on.
func DefaultConfig() Config {
	return Config{
		Mode:              pt.ModeContinuous,
		Period:            5_000_000,
		BufBytes:          8 << 10,
		CompressConstants: true,
		Costs:             vm.DefaultCosts(),
	}
}

// Result is the outcome of one toolchain run.
type Result struct {
	Workload string
	Config   Config

	Prog      *isa.Program // instrumented binary
	Notes     *instrument.Annotations
	Classes   *dataflow.Result
	Trace     *trace.Trace
	Decode    pt.DecodeStats
	Stats     vm.Stats // instrumented, traced execution
	BaseStats vm.Stats // uninstrumented execution, same inputs

	// Toolchain step timings (Table II).
	InstrumentTime time.Duration
	CollectTime    time.Duration
	BuildTime      time.Duration // trace building (Analysis/1)

	OrigSize  int // original binary text bytes
	InstrSize int // instrumented binary text bytes
}

// Overhead returns the tracing run-time overhead as a fraction:
// cycles(instrumented+traced)/cycles(base) − 1.
func (r *Result) Overhead() float64 {
	if r.BaseStats.Cycles == 0 {
		return 0
	}
	return float64(r.Stats.Cycles)/float64(r.BaseStats.Cycles) - 1
}

// PTWriteRatio returns executed-ptwrite instructions (recorded + masked)
// per non-ptwrite instruction — the red correlation series of Fig. 7.
func (r *Result) PTWriteRatio() float64 {
	ptw := r.Stats.PTWrites + r.Stats.PTWMasked
	rest := r.Stats.Instrs - ptw
	if rest == 0 {
		return 0
	}
	return float64(ptw) / float64(rest)
}

// Instrument runs static analysis and binary rewriting on a linked
// program (Step 1).
func Instrument(prog *isa.Program, opts instrument.Options) (*instrument.Output, *dataflow.Result, error) {
	classes, err := dataflow.Analyze(prog)
	if err != nil {
		return nil, nil, fmt.Errorf("core: classify: %w", err)
	}
	out, err := instrument.Rewrite(prog, classes, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: rewrite: %w", err)
	}
	return out, classes, nil
}

// Run executes the full pipeline on a workload: build, instrument, run
// the uninstrumented binary for the overhead baseline, run the
// instrumented binary under the configured collector, and decode the
// trace.
func Run(w Workload, cfg Config) (*Result, error) {
	if cfg.Costs == (vm.CostModel{}) {
		cfg.Costs = vm.DefaultCosts()
	}
	res := &Result{Workload: w.Name(), Config: cfg}

	// Baseline execution on a fresh build.
	baseProg, baseSpace, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("core: build %s: %w", w.Name(), err)
	}
	res.OrigSize = baseProg.Size()
	baseM := vm.New(baseProg, baseSpace, cfg.Costs)
	baseM.MaxInstrs = cfg.MaxInstrs
	if res.BaseStats, err = baseM.Run(); err != nil {
		return nil, fmt.Errorf("core: baseline run %s: %w", w.Name(), err)
	}

	// Instrument a fresh build.
	prog, space, err := w.Build()
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	out, classes, err := Instrument(prog, instrument.Options{
		Procs:             cfg.ROI,
		CompressConstants: cfg.CompressConstants,
	})
	if err != nil {
		return nil, err
	}
	res.InstrumentTime = time.Since(t0)
	res.Prog, res.Notes, res.Classes = out.Prog, out.Notes, classes
	res.InstrSize = out.Prog.Size()

	// Collector configuration, including optional hardware guards.
	pcfg := pt.Config{
		Mode:              cfg.Mode,
		Period:            cfg.Period,
		BufBytes:          cfg.BufBytes,
		CopyBytesPerCycle: cfg.CopyBytesPerCycle,
		Seed:              cfg.Seed,
	}
	if len(cfg.HWFilterProcs) > 0 {
		lo, hi, err := procRange(out.Prog, cfg.HWFilterProcs)
		if err != nil {
			return nil, err
		}
		pcfg.FilterLo, pcfg.FilterHi = lo, hi
	}
	col := pt.NewCollector(pcfg)

	// Traced execution.
	t0 = time.Now()
	m := vm.New(out.Prog, space, cfg.Costs)
	m.MaxInstrs = cfg.MaxInstrs
	m.Trace = col
	if res.Stats, err = m.Run(); err != nil {
		return nil, fmt.Errorf("core: traced run %s: %w", w.Name(), err)
	}
	res.CollectTime = time.Since(t0)

	// Trace building (Analysis/1): per-sample decode on a worker pool.
	t0 = time.Now()
	res.Trace, res.Decode, err = pt.NewBuilder(col, out.Notes,
		pt.WithWorkers(cfg.BuildWorkers)).Build(context.Background())
	if err != nil {
		return nil, fmt.Errorf("core: build trace %s: %w", w.Name(), err)
	}
	res.BuildTime = time.Since(t0)
	return res, nil
}

// procRange returns the [lo, hi) code-address span covering the named
// procedures in a linked program. Procedures are laid out contiguously,
// so the union of spans is a single range when the procs are adjacent;
// for non-adjacent procs the range covers everything in between, which
// mirrors real PT address filters (a small number of range registers).
func procRange(prog *isa.Program, procs []string) (lo, hi uint64, err error) {
	lo = ^uint64(0)
	for _, name := range procs {
		p := prog.Proc(name)
		if p == nil {
			return 0, 0, fmt.Errorf("core: hw-filter: unknown procedure %q", name)
		}
		for _, b := range p.Blocks {
			for i := range b.Instrs {
				a := b.Instrs[i].Addr
				if a < lo {
					lo = a
				}
				if a+uint64(b.Instrs[i].EncodedSize()) > hi {
					hi = a + uint64(b.Instrs[i].EncodedSize())
				}
			}
		}
	}
	if lo >= hi {
		return 0, 0, fmt.Errorf("core: hw-filter: empty range")
	}
	return lo, hi, nil
}

// FuncWorkload adapts a build function to the Workload interface.
type FuncWorkload struct {
	WName   string
	BuildFn func() (*isa.Program, *mem.Space, error)
}

// Name implements Workload.
func (f FuncWorkload) Name() string { return f.WName }

// Build implements Workload.
func (f FuncWorkload) Build() (*isa.Program, *mem.Space, error) { return f.BuildFn() }
