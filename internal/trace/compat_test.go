package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
)

// TestCrossVersionRoundTrip pins the compatibility matrix: a trace
// written in the legacy v1/v2 row formats reads back into the same
// columnar arena as the v3 writer produces, field for field, and its
// content hash — defined over the canonical v3 encoding — is identical
// whichever version carried it.
func TestCrossVersionRoundTrip(t *testing.T) {
	tr := synthetic(11, 4, 60)
	wantHash := tr.Hash()
	for _, version := range []int{1, 2} {
		enc, err := tr.EncodeLegacy(version)
		if err != nil {
			t.Fatalf("v%d encode: %v", version, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("v%d decode: %v", version, err)
		}
		if version == 1 {
			// v1 has no LostBytes field; zero it on the expectation.
			want := *tr
			want.LostBytes = 0
			if got.Hash() == wantHash && tr.LostBytes != 0 {
				t.Errorf("v1 carried LostBytes it cannot represent")
			}
			want2 := &want
			if !reflect.DeepEqual(want2, got) {
				t.Errorf("v1 round trip altered the trace")
			}
			continue
		}
		if !reflect.DeepEqual(tr, got) {
			t.Errorf("v%d round trip altered the trace", version)
		}
		if h := got.Hash(); h != wantHash {
			t.Errorf("v%d round trip changed hash: %s != %s", version, h, wantHash)
		}
	}
}

// TestV3ReencodeStable pins the determinism contract: decode(encode(t))
// re-encodes to byte-identical output, so the content hash survives any
// number of round trips.
func TestV3ReencodeStable(t *testing.T) {
	tr := synthetic(12, 3, 80)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Error("re-encoding a decoded trace changed the bytes")
	}
}

// TestV3SmallerThanV2 pins the size win on a compressible trace:
// strided addresses, single class, constant proc — the O0 toolchain
// shape §III-B's compression argument targets.
func TestV3SmallerThanV2(t *testing.T) {
	tr := &Trace{Module: "o0", Mode: "sampled", Period: 1000, TotalLoads: 1 << 20}
	for s := 0; s < 16; s++ {
		smp := &Sample{Seq: s, TriggerLoads: uint64(s+1) * 1000}
		for i := 0; i < 256; i++ {
			smp.Records = append(smp.Records, Record{
				IP:   0x401000 + uint64(i%8)*6,
				Addr: 0x2000_0000 + uint64(s*256+i)*8,
				TS:   uint64(s*256+i) * 3,
				Proc: "kernel", Implied: 1, Stride: 8,
			})
		}
		tr.AppendSample(smp)
	}
	v2, err := tr.EncodeLegacy(2)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(v3) >= len(v2) {
		t.Errorf("v3 (%d bytes) not smaller than v2 (%d bytes)", len(v3), len(v2))
	}
}

// hostileV3 builds a tiny v3 body whose sample index claims the given
// record total — the decompression-bomb shape the reader must refuse.
func hostileV3(records uint64) []byte {
	var buf bytes.Buffer
	writeU := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], v)
		buf.Write(b[:n])
	}
	buf.WriteString("MGTR")
	writeU(3) // version
	writeU(0) // module ""
	writeU(0) // mode ""
	for i := 0; i < 7; i++ {
		writeU(0) // metadata
	}
	writeU(0)       // empty string table
	writeU(1)       // one sample...
	writeU(0)       // seq
	writeU(0)       // cpu
	writeU(0)       // trigger
	writeU(records) // ...claiming this many records
	return buf.Bytes()
}

// TestHostileRecordCount pins the v3 reader's bomb defence: a ~25-byte
// body claiming 2^35 records must fail fast with a decode error — the
// one memgazed maps to 400 invalid_trace — instead of preallocating
// toward an OOM.
func TestHostileRecordCount(t *testing.T) {
	_, err := Decode(hostileV3(1 << 35))
	if err == nil {
		t.Fatal("hostile record count accepted")
	}
	if !strings.Contains(err.Error(), "implausible record count") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestHostileRunLength pins the RLE validation: a run longer than the
// declared record count is rejected rather than expanded.
func TestHostileRunLength(t *testing.T) {
	var buf bytes.Buffer
	writeU := func(v uint64) {
		var b [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(b[:], v)
		buf.Write(b[:n])
	}
	buf.WriteString("MGTR")
	writeU(3)
	writeU(0)
	writeU(0)
	for i := 0; i < 7; i++ {
		writeU(0)
	}
	writeU(0) // empty string table
	writeU(1) // one sample
	writeU(0) // seq
	writeU(0) // cpu
	writeU(0) // trigger
	writeU(4) // four records
	// addrs column: RLE, one run claiming 2^30 records.
	buf.WriteByte(colRLE)
	writeU(7)
	writeU(1 << 30)
	_, err := Decode(buf.Bytes())
	if err == nil {
		t.Fatal("hostile run length accepted")
	}
	if !strings.Contains(err.Error(), "bad run length") {
		t.Errorf("unexpected error: %v", err)
	}
}

// FuzzDecode throws arbitrary bytes at the multi-version reader. Any
// input that decodes must re-encode deterministically and decode again
// to the same hash; everything else must fail with an error, never a
// panic or a runaway allocation.
func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings of every wire version, the empty
	// trace, and the hostile shapes the reader must keep rejecting.
	tr := synthetic(21, 3, 20)
	if enc, err := tr.Encode(); err == nil {
		f.Add(enc)
	}
	for _, v := range []int{1, 2} {
		if enc, err := tr.EncodeLegacy(v); err == nil {
			f.Add(enc)
		}
	}
	if enc, err := (&Trace{}).Encode(); err == nil {
		f.Add(enc)
	}
	f.Add(hostileV3(1 << 35))
	f.Add([]byte("MGTR"))
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := got.Encode()
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		re, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if re.Hash() != got.Hash() {
			t.Fatal("hash not stable across re-encode")
		}
	})
}

// BenchmarkEncodeV3 tracks the columnar writer's cost — the encode_v3
// gate entry of memgaze-bench measures the same operation.
func BenchmarkEncodeV3(b *testing.B) {
	tr := synthetic(42, 256, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
