package trace_test

import (
	"bytes"
	"fmt"

	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/trace"
)

// The decompression mathematics of §III-C: κ corrects for elided
// Constant loads (Eq. 2), ρ scales sample statistics to the population
// (Eq. 1).
func ExampleTrace_Kappa() {
	t := &trace.Trace{Period: 1000, TotalLoads: 60_000}
	s := &trace.Sample{}
	for i := 0; i < 100; i++ {
		s.Records = append(s.Records, trace.Record{
			Addr:    0x1000 + uint64(i)*8,
			Class:   dataflow.Strided,
			Implied: 1, // each record stands for one elided Constant load
		})
	}
	t.SetSamples(s)
	fmt.Printf("kappa = %.1f\n", t.Kappa())
	fmt.Printf("rho   = %.0f\n", t.Rho())
	// Output:
	// kappa = 2.0
	// rho   = 300
}

// Traces serialise to the compact MGTR format and read back intact.
func ExampleTrace_Write() {
	t := &trace.Trace{Module: "demo", Mode: "sampled", Period: 1000}
	t.SetSamples(&trace.Sample{
		Records: []trace.Record{{IP: 0x401000, Addr: 0x2000, Proc: "f"}},
	})
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		fmt.Println(err)
		return
	}
	got, err := trace.Read(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("module %s: %d record(s)\n", got.Module, got.NumRecords())
	// Output: module demo: 1 record(s)
}
