// Package trace defines MemGaze-Go's trace data model: load-level records
// grouped into samples, with the decompression mathematics of §III-C
// (sample ratio ρ, Eq. 1; compression ratio κ, Eq. 2).
//
// A sampled trace (Fig. 3) is a set of samples σ. Each sample holds w
// recorded accesses followed by z unrecorded ones; the average period
// w+z is the trace's Period. Records carry the load's code address (IP),
// the reconstructed effective data address, a timestamp in core cycles,
// the static access class, and the number of Constant loads the record
// implies under trace compression.
package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"iter"
	"sort"

	"github.com/memgaze/memgaze-go/internal/dataflow"
)

// Record is one decoded load-level access.
type Record struct {
	IP      uint64 // load instruction address (instrumented module)
	Addr    uint64 // effective data address
	TS      uint64 // core cycles at retirement
	Class   dataflow.Class
	Implied uint32 // elided Constant loads attributed to this record
	Stride  int32  // static stride of the load site (Strided class)
	Line    int32
	Proc    string
}

// Sample is one contiguous recorded window: the contents of the trace
// buffer at a sampling trigger.
type Sample struct {
	Seq          int      // sample index within the trace
	CPU          int      // logical CPU / worker the sample came from
	TriggerLoads uint64   // hardware load-counter value at the trigger
	Records      []Record // w recorded accesses, in program order
}

// W returns the number of observed (possibly compressed) accesses in the
// sample — A(σ) for a single sample.
func (s *Sample) W() int { return len(s.Records) }

// Trace is a collected memory trace: sampled (MemGaze) or full.
type Trace struct {
	Module   string
	Mode     string // "sampled", "sampled-opt", or "full"
	Period   uint64 // w+z in loads; 0 for full traces
	BufBytes int    // hardware buffer size; 0 for full traces

	Samples []*Sample

	// TotalLoads is the hardware load counter at the end of the run: all
	// executed loads, including uninstrumented Constant loads.
	TotalLoads uint64
	// Bytes is the encoded size of everything recorded (trace storage).
	Bytes uint64
	// DroppedEvents counts events lost to ring overflow ('DROP' records
	// in perf terms); meaningful for full traces.
	DroppedEvents uint64
	// RecordedEvents counts events that survived collection.
	RecordedEvents uint64
	// LostBytes is the payload lost during trace building: bytes the
	// decoder had to skip over (buffer wrap, corruption, truncation),
	// summed from the build's DecodeStats so a saved trace carries its
	// own decode-quality record.
	LostBytes uint64
}

// NumRecords returns A(σ): total observed accesses across all samples.
func (t *Trace) NumRecords() int {
	n := 0
	for _, s := range t.Samples {
		n += len(s.Records)
	}
	return n
}

// ImpliedConst returns A_const(σ): the Constant accesses implied by the
// observed records under trace compression.
func (t *Trace) ImpliedConst() uint64 {
	var n uint64
	for _, s := range t.Samples {
		for i := range s.Records {
			n += uint64(s.Records[i].Implied)
		}
	}
	return n
}

// Counts returns NumRecords and ImpliedConst from a single walk over
// the records — what callers deriving ρ and κ together want instead of
// two (or, via Rho, three) separate passes.
func (t *Trace) Counts() (records int, implied uint64) {
	for _, s := range t.Samples {
		records += len(s.Records)
		for i := range s.Records {
			implied += uint64(s.Records[i].Implied)
		}
	}
	return records, implied
}

// RhoKappa computes the sample ratio ρ (Eq. 1) and compression ratio κ
// (Eq. 2) from precomputed Counts, with exactly the arithmetic of Rho
// and Kappa — callers holding the counts get identical floats without
// re-walking the trace.
func (t *Trace) RhoKappa(records int, implied uint64) (rho, kappa float64) {
	kappa = 1
	if records != 0 {
		kappa = 1 + float64(implied)/float64(records)
	}
	decompressed := kappa * float64(records)
	if decompressed == 0 {
		return 1, kappa
	}
	executed := float64(t.TotalLoads)
	if executed == 0 {
		executed = float64(len(t.Samples)) * float64(t.Period)
	}
	if executed < decompressed {
		return 1, kappa
	}
	return executed / decompressed, kappa
}

// Kappa returns the compression ratio κ(σ) = 1 + A_const(σ)/A(σ)
// (Eq. 2). It is 1 for uncompressed traces and for empty traces.
func (t *Trace) Kappa() float64 {
	_, kappa := t.RhoKappa(t.Counts())
	return kappa
}

// Rho returns the sample ratio ρ: all executed accesses to all sampled
// (decompressed) accesses (Eq. 1). For a full trace ρ is 1 by
// definition. When the hardware load counter is available it is the
// ground truth for executed accesses; otherwise |σ|·(w+z) estimates it.
func (t *Trace) Rho() float64 {
	rho, _ := t.RhoKappa(t.Counts())
	return rho
}

// MeanW returns the average observed window size w across samples.
func (t *Trace) MeanW() float64 {
	if len(t.Samples) == 0 {
		return 0
	}
	return float64(t.NumRecords()) / float64(len(t.Samples))
}

// Len returns the total number of records in the trace — the length of
// the sequence Records yields. It is a synonym of NumRecords, named for
// range-style callers.
func (t *Trace) Len() int { return t.NumRecords() }

// Records returns an iterator over every record in trace order, keyed by
// the index of the sample the record belongs to. It is the preferred way
// for analyses to walk a trace: sample boundaries are visible (the key
// changes), yet callers never index Samples directly.
func (t *Trace) Records() iter.Seq2[int, *Record] {
	return func(yield func(int, *Record) bool) {
		for si, s := range t.Samples {
			for i := range s.Records {
				if !yield(si, &s.Records[i]) {
					return
				}
			}
		}
	}
}

// AllRecords returns every record in trace order. The slice is fresh.
func (t *Trace) AllRecords() []Record {
	out := make([]Record, 0, t.NumRecords())
	for _, s := range t.Samples {
		out = append(out, s.Records...)
	}
	return out
}

// FilterProc returns a shallow trace containing only records of the
// given procedures (a code-window restriction, §IV-B). Sample structure
// is preserved; empty samples are dropped.
func (t *Trace) FilterProc(procs ...string) *Trace {
	want := make(map[string]bool, len(procs))
	for _, p := range procs {
		want[p] = true
	}
	nt := &Trace{Module: t.Module, Mode: t.Mode, Period: t.Period,
		BufBytes: t.BufBytes, TotalLoads: t.TotalLoads, Bytes: t.Bytes}
	for _, s := range t.Samples {
		var recs []Record
		for _, r := range s.Records {
			if want[r.Proc] {
				recs = append(recs, r)
			}
		}
		if len(recs) > 0 {
			nt.Samples = append(nt.Samples, &Sample{Seq: s.Seq, TriggerLoads: s.TriggerLoads, Records: recs})
		}
	}
	return nt
}

// fileVersion is the on-disk format version written after the "MGTR"
// magic bytes. Version 2 added LostBytes to the header; version-1 files
// still read (the field defaults to zero).
const fileVersion = 2

// maxSection bounds a single length-prefixed string in the MGTR
// format, so a corrupt or hostile length prefix cannot force a huge
// allocation before the read fails.
const maxSection = 1 << 30

// maxPrealloc bounds slice capacity reserved from a count read out of
// the header. Counts above it are still honoured — the slices grow by
// append, so an inflated count fails with io.EOF once the input runs
// out instead of OOMing up front.
const maxPrealloc = 1 << 16

// Write serialises the trace in a compact binary format: a header, then
// per sample a record count and delta-encoded records. Proc names are
// interned in a string table.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// String table.
	strIdx := map[string]uint32{}
	var strs []string
	intern := func(s string) uint32 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint32(len(strs))
		strIdx[s] = i
		strs = append(strs, s)
		return i
	}
	for _, s := range t.Samples {
		for i := range s.Records {
			intern(s.Records[i].Proc)
		}
	}

	writeU := func(v uint64) { var b [binary.MaxVarintLen64]byte; n := binary.PutUvarint(b[:], v); bw.Write(b[:n]) }
	writeStr := func(s string) { writeU(uint64(len(s))); bw.WriteString(s) }

	bw.WriteString("MGTR")
	writeU(fileVersion)
	writeStr(t.Module)
	writeStr(t.Mode)
	writeU(t.Period)
	writeU(uint64(t.BufBytes))
	writeU(t.TotalLoads)
	writeU(t.Bytes)
	writeU(t.DroppedEvents)
	writeU(t.RecordedEvents)
	writeU(t.LostBytes)
	writeU(uint64(len(strs)))
	for _, s := range strs {
		writeStr(s)
	}
	writeU(uint64(len(t.Samples)))
	for _, s := range t.Samples {
		writeU(uint64(s.Seq))
		writeU(uint64(s.CPU))
		writeU(s.TriggerLoads)
		writeU(uint64(len(s.Records)))
		var lastIP, lastAddr, lastTS uint64
		for i := range s.Records {
			r := &s.Records[i]
			writeU(zigzag(int64(r.IP - lastIP)))
			writeU(zigzag(int64(r.Addr - lastAddr)))
			writeU(r.TS - lastTS)
			writeU(uint64(r.Class))
			writeU(uint64(r.Implied))
			writeU(zigzag(int64(r.Stride)))
			writeU(zigzag(int64(r.Line)))
			writeU(uint64(strIdx[r.Proc]))
			lastIP, lastAddr, lastTS = r.IP, r.Addr, r.TS
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != "MGTR" {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readStr := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > maxSection {
			return "", fmt.Errorf("trace: string of %d bytes exceeds limit", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := readU()
	if err != nil {
		return nil, err
	}
	if ver < 1 || ver > fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	if t.Module, err = readStr(); err != nil {
		return nil, err
	}
	if t.Mode, err = readStr(); err != nil {
		return nil, err
	}
	gets := []*uint64{&t.Period, nil, &t.TotalLoads, &t.Bytes, &t.DroppedEvents, &t.RecordedEvents}
	if ver >= 2 {
		gets = append(gets, &t.LostBytes)
	}
	for i, p := range gets {
		v, err := readU()
		if err != nil {
			return nil, err
		}
		if i == 1 {
			t.BufBytes = int(v)
		} else {
			*p = v
		}
	}
	nstr, err := readU()
	if err != nil {
		return nil, err
	}
	strs := make([]string, 0, min(nstr, maxPrealloc))
	for i := uint64(0); i < nstr; i++ {
		s, err := readStr()
		if err != nil {
			return nil, err
		}
		strs = append(strs, s)
	}
	nsmp, err := readU()
	if err != nil {
		return nil, err
	}
	for si := uint64(0); si < nsmp; si++ {
		seq, err := readU()
		if err != nil {
			return nil, err
		}
		cpu, err := readU()
		if err != nil {
			return nil, err
		}
		trg, err := readU()
		if err != nil {
			return nil, err
		}
		nrec, err := readU()
		if err != nil {
			return nil, err
		}
		s := &Sample{Seq: int(seq), CPU: int(cpu), TriggerLoads: trg,
			Records: make([]Record, 0, min(nrec, maxPrealloc))}
		var lastIP, lastAddr, lastTS uint64
		for ri := uint64(0); ri < nrec; ri++ {
			dip, err := readU()
			if err != nil {
				return nil, err
			}
			daddr, err := readU()
			if err != nil {
				return nil, err
			}
			dts, err := readU()
			if err != nil {
				return nil, err
			}
			cls, err := readU()
			if err != nil {
				return nil, err
			}
			imp, err := readU()
			if err != nil {
				return nil, err
			}
			stride, err := readU()
			if err != nil {
				return nil, err
			}
			line, err := readU()
			if err != nil {
				return nil, err
			}
			sidx, err := readU()
			if err != nil {
				return nil, err
			}
			if sidx >= nstr {
				return nil, fmt.Errorf("trace: bad string index %d", sidx)
			}
			lastIP += uint64(unzigzag(dip))
			lastAddr += uint64(unzigzag(daddr))
			lastTS += dts
			s.Records = append(s.Records, Record{
				IP: lastIP, Addr: lastAddr, TS: lastTS,
				Class: dataflow.Class(cls), Implied: uint32(imp),
				Stride: int32(unzigzag(stride)),
				Line:   int32(unzigzag(line)), Proc: strs[sidx],
			})
		}
		t.Samples = append(t.Samples, s)
	}
	return t, nil
}

// Encode serialises the trace to its MGTR binary form in memory — the
// HTTP-friendly counterpart of Write. Decode inverts it.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserialises a trace from its MGTR binary form, as produced by
// Encode or Write.
func Decode(b []byte) (*Trace, error) {
	return Read(bytes.NewReader(b))
}

// Hash returns the trace's content hash: the hex SHA-256 of its MGTR
// encoding. Two traces hash equal exactly when their serialised forms
// are byte-identical, so the hash survives a Write/Read round trip and
// is a stable identity for content-addressed stores.
func (t *Trace) Hash() string {
	h := sha256.New()
	t.Write(h) // hash.Hash writes never fail
	return hex.EncodeToString(h.Sum(nil))
}

// EncodedSize returns the size in bytes of the trace's MGTR encoding
// without materialising it.
func (t *Trace) EncodedSize() int64 {
	var cw countWriter
	t.Write(&cw)
	return cw.n
}

// HashAndSize returns Hash and EncodedSize from a single serialisation
// pass — what an upload path wants, instead of walking the trace twice.
func (t *Trace) HashAndSize() (string, int64) {
	h := NewHasher()
	t.Write(h)
	return h.Sum()
}

// WriteTo streams the trace's MGTR encoding to w and reports the bytes
// written, implementing io.WriterTo: io.Copy-style consumers — a raw
// download response, a store spilling to disk — serialise a trace
// without materialising the encoding in memory first.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var cw countWriter
	err := t.Write(io.MultiWriter(&cw, w))
	return cw.n, err
}

// Hasher computes a trace's content identity incrementally: an
// io.Writer that hashes and counts every MGTR byte written through it.
// Stream a trace into one (t.Write(h), or tee a serialised body through
// it as it is read) and Sum returns the same pair as HashAndSize —
// without the encoding ever being resident.
type Hasher struct {
	h hash.Hash
	n int64
}

// NewHasher returns a Hasher ready to receive MGTR bytes.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// Write feeds bytes into the identity; it never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	h.h.Write(p)
	h.n += int64(len(p))
	return len(p), nil
}

// Sum returns the content hash of the bytes written so far and their
// count. It does not consume the state: more writes may follow.
func (h *Hasher) Sum() (id string, size int64) {
	return hex.EncodeToString(h.h.Sum(nil)), h.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Merge combines per-CPU traces (one per worker, as perf merges per-CPU
// PT buffers) into a single trace. Samples are tagged with their worker
// index, interleaved by trigger position, and renumbered; load counters
// and sizes are summed.
func Merge(parts []*Trace) *Trace {
	if len(parts) == 0 {
		return &Trace{}
	}
	out := &Trace{
		Module: parts[0].Module, Mode: parts[0].Mode,
		Period: parts[0].Period, BufBytes: parts[0].BufBytes,
	}
	type tagged struct {
		s   *Sample
		cpu int
	}
	var all []tagged
	for cpu, p := range parts {
		out.TotalLoads += p.TotalLoads
		out.Bytes += p.Bytes
		out.DroppedEvents += p.DroppedEvents
		out.RecordedEvents += p.RecordedEvents
		out.LostBytes += p.LostBytes
		for _, s := range p.Samples {
			all = append(all, tagged{s, cpu})
		}
	}
	// Interleave by per-worker trigger progress so the merged timeline
	// advances fairly across workers.
	sort.Slice(all, func(i, j int) bool {
		if all[i].s.TriggerLoads != all[j].s.TriggerLoads {
			return all[i].s.TriggerLoads < all[j].s.TriggerLoads
		}
		return all[i].cpu < all[j].cpu
	})
	for i, ts := range all {
		ns := *ts.s
		ns.Seq = i
		ns.CPU = ts.cpu
		out.Samples = append(out.Samples, &ns)
	}
	return out
}
