// Package trace defines MemGaze-Go's trace data model: load-level records
// grouped into samples, with the decompression mathematics of §III-C
// (sample ratio ρ, Eq. 1; compression ratio κ, Eq. 2).
//
// A sampled trace (Fig. 3) is a set of samples σ. Each sample holds w
// recorded accesses followed by z unrecorded ones; the average period
// w+z is the trace's Period. Records carry the load's code address (IP),
// the reconstructed effective data address, a timestamp in core cycles,
// the static access class, and the number of Constant loads the record
// implies under trace compression.
//
// # Columnar arena
//
// The in-memory representation is a columnar arena: one flat slice per
// record field (addrs, ips, ts, classes, implied, strides, lines,
// interned proc-name ids) plus a per-sample offset index. The garbage
// collector sees a handful of large pointer-free slices instead of
// millions of Record structs, walks touch only the columns they read,
// and a contiguous sample range is a contiguous column range — which is
// what makes the sharded walks cache-friendly and the hot inner loops
// sequential scans.
//
// Analyses read the columns through accessors (Addrs, IPs, TS, Classes,
// Implied, Strides, Lines, ProcIDs) indexed by the absolute record
// ranges SampleRange reports. Record and Sample remain as interchange
// structs: builders append them (AppendSample), observers receive them
// (SampleAt, Records), but the trace never stores them.
package trace

import (
	"iter"
	"sort"

	"github.com/memgaze/memgaze-go/internal/dataflow"
)

// Record is one decoded load-level access — the interchange form of a
// single column row. Builders construct Records and tests assert on
// them; the trace itself stores each field in its own column.
type Record struct {
	IP      uint64 // load instruction address (instrumented module)
	Addr    uint64 // effective data address
	TS      uint64 // core cycles at retirement
	Class   dataflow.Class
	Implied uint32 // elided Constant loads attributed to this record
	Stride  int32  // static stride of the load site (Strided class)
	Line    int32
	Proc    string
}

// Sample is one contiguous recorded window: the contents of the trace
// buffer at a sampling trigger, in interchange (array-of-structs) form.
type Sample struct {
	Seq          int      // sample index within the trace
	CPU          int      // logical CPU / worker the sample came from
	TriggerLoads uint64   // hardware load-counter value at the trigger
	Records      []Record // w recorded accesses, in program order
}

// W returns the number of observed (possibly compressed) accesses in the
// sample — A(σ) for a single sample.
func (s *Sample) W() int { return len(s.Records) }

// SampleInfo is the per-sample entry of the offset index: the sample's
// identity plus its absolute record range [Lo, Hi) in the columns.
type SampleInfo struct {
	Seq          int
	CPU          int
	TriggerLoads uint64
	Lo, Hi       int
}

// W returns the number of records in the sample.
func (si SampleInfo) W() int { return si.Hi - si.Lo }

// Trace is a collected memory trace: sampled (MemGaze) or full. Record
// data lives in the columnar arena; see the package comment.
type Trace struct {
	Module   string
	Mode     string // "sampled", "sampled-opt", or "full"
	Period   uint64 // w+z in loads; 0 for full traces
	BufBytes int    // hardware buffer size; 0 for full traces

	// TotalLoads is the hardware load counter at the end of the run: all
	// executed loads, including uninstrumented Constant loads.
	TotalLoads uint64
	// Bytes is the encoded size of everything recorded (trace storage).
	Bytes uint64
	// DroppedEvents counts events lost to ring overflow ('DROP' records
	// in perf terms); meaningful for full traces.
	DroppedEvents uint64
	// RecordedEvents counts events that survived collection.
	RecordedEvents uint64
	// LostBytes is the payload lost during trace building: bytes the
	// decoder had to skip over (buffer wrap, corruption, truncation),
	// summed from the build's DecodeStats so a saved trace carries its
	// own decode-quality record.
	LostBytes uint64

	// Columnar arena. For a trace built by appending, record index space
	// is dense [0, len(addrs)); for a sample-subset view (SampleSlice,
	// FilterSamples) the columns are shared with the parent and the
	// index entries address them absolutely.
	addrs   []uint64
	ips     []uint64
	ts      []uint64
	classes []byte
	implied []uint32
	strides []int32
	lines   []int32
	procIDs []uint32

	procs   []string          // interned proc names, first-appearance order
	procIdx map[string]uint32 // build-side intern index
	samples []SampleInfo      // per-sample offset index

	// view marks a trace whose columns are shared with another trace
	// (SampleSlice, FilterSamples). Views are read-only.
	view bool
}

// NumSamples returns the number of samples in the trace.
func (t *Trace) NumSamples() int { return len(t.samples) }

// SampleInfo returns sample i's index entry: identity and the absolute
// record range [Lo, Hi) its records occupy in the columns.
func (t *Trace) SampleInfo(i int) SampleInfo { return t.samples[i] }

// SampleRange returns the absolute record index range [lo, hi) of
// sample i in the columns.
func (t *Trace) SampleRange(i int) (lo, hi int) {
	s := &t.samples[i]
	return s.Lo, s.Hi
}

// Addrs returns the effective-address column. The slice is the trace's
// backing storage: callers must treat it as read-only and index it only
// within SampleRange spans.
func (t *Trace) Addrs() []uint64 { return t.addrs }

// IPs returns the load-instruction address column (read-only).
func (t *Trace) IPs() []uint64 { return t.ips }

// TS returns the timestamp column (read-only).
func (t *Trace) TS() []uint64 { return t.ts }

// Classes returns the access-class column (read-only).
func (t *Trace) Classes() []byte { return t.classes }

// Implied returns the implied-Constant-loads column (read-only).
func (t *Trace) Implied() []uint32 { return t.implied }

// Strides returns the static-stride column (read-only).
func (t *Trace) Strides() []int32 { return t.strides }

// Lines returns the source-line column (read-only).
func (t *Trace) Lines() []int32 { return t.lines }

// ProcIDs returns the interned proc-name id column (read-only). Ids
// index the Procs table.
func (t *Trace) ProcIDs() []uint32 { return t.procIDs }

// Procs returns the interned proc-name table (read-only): ProcIDs
// values index it.
func (t *Trace) Procs() []string { return t.procs }

// ProcName returns the proc name behind an interned id.
func (t *Trace) ProcName(id uint32) string { return t.procs[id] }

// At materialises record i (absolute column index) in interchange form.
func (t *Trace) At(i int) Record {
	return Record{
		IP: t.ips[i], Addr: t.addrs[i], TS: t.ts[i],
		Class:   dataflow.Class(t.classes[i]),
		Implied: t.implied[i], Stride: t.strides[i],
		Line: t.lines[i], Proc: t.procs[t.procIDs[i]],
	}
}

// NumRecords returns A(σ): total observed accesses across all samples.
func (t *Trace) NumRecords() int {
	n := 0
	for i := range t.samples {
		n += t.samples[i].Hi - t.samples[i].Lo
	}
	return n
}

// ImpliedConst returns A_const(σ): the Constant accesses implied by the
// observed records under trace compression.
func (t *Trace) ImpliedConst() uint64 {
	_, implied := t.Counts()
	return implied
}

// Counts returns NumRecords and ImpliedConst from a single walk over
// the implied column — what callers deriving ρ and κ together want
// instead of two (or, via Rho, three) separate passes.
func (t *Trace) Counts() (records int, implied uint64) {
	for i := range t.samples {
		s := &t.samples[i]
		records += s.Hi - s.Lo
		for _, v := range t.implied[s.Lo:s.Hi] {
			implied += uint64(v)
		}
	}
	return records, implied
}

// RhoKappa computes the sample ratio ρ (Eq. 1) and compression ratio κ
// (Eq. 2) from precomputed Counts, with exactly the arithmetic of Rho
// and Kappa — callers holding the counts get identical floats without
// re-walking the trace.
func (t *Trace) RhoKappa(records int, implied uint64) (rho, kappa float64) {
	kappa = 1
	if records != 0 {
		kappa = 1 + float64(implied)/float64(records)
	}
	decompressed := kappa * float64(records)
	if decompressed == 0 {
		return 1, kappa
	}
	executed := float64(t.TotalLoads)
	if executed == 0 {
		executed = float64(len(t.samples)) * float64(t.Period)
	}
	if executed < decompressed {
		return 1, kappa
	}
	return executed / decompressed, kappa
}

// Kappa returns the compression ratio κ(σ) = 1 + A_const(σ)/A(σ)
// (Eq. 2). It is 1 for uncompressed traces and for empty traces.
func (t *Trace) Kappa() float64 {
	_, kappa := t.RhoKappa(t.Counts())
	return kappa
}

// Rho returns the sample ratio ρ: all executed accesses to all sampled
// (decompressed) accesses (Eq. 1). For a full trace ρ is 1 by
// definition. When the hardware load counter is available it is the
// ground truth for executed accesses; otherwise |σ|·(w+z) estimates it.
func (t *Trace) Rho() float64 {
	rho, _ := t.RhoKappa(t.Counts())
	return rho
}

// MeanW returns the average observed window size w across samples.
func (t *Trace) MeanW() float64 {
	if len(t.samples) == 0 {
		return 0
	}
	return float64(t.NumRecords()) / float64(len(t.samples))
}

// Len returns the total number of records in the trace — the length of
// the sequence Records yields. It is a synonym of NumRecords, named for
// range-style callers.
func (t *Trace) Len() int { return t.NumRecords() }

// Records returns an iterator over every record in trace order, keyed
// by the index of the sample the record belongs to. The yielded pointer
// refers to a scratch Record reused across iterations: it is valid only
// until the next iteration step and must not be retained. Hot walks
// should read the columns directly; Records is the convenient form for
// everything else.
func (t *Trace) Records() iter.Seq2[int, *Record] {
	return func(yield func(int, *Record) bool) {
		var r Record
		for si := range t.samples {
			s := &t.samples[si]
			for i := s.Lo; i < s.Hi; i++ {
				r.IP, r.Addr, r.TS = t.ips[i], t.addrs[i], t.ts[i]
				r.Class = dataflow.Class(t.classes[i])
				r.Implied, r.Stride = t.implied[i], t.strides[i]
				r.Line, r.Proc = t.lines[i], t.procs[t.procIDs[i]]
				if !yield(si, &r) {
					return
				}
			}
		}
	}
}

// AllRecords returns every record in trace order. The slice is fresh.
func (t *Trace) AllRecords() []Record {
	out := make([]Record, 0, t.NumRecords())
	for si := range t.samples {
		out = t.appendSampleRecords(out, si)
	}
	return out
}

// SampleRecords materialises sample i's records. The slice is fresh.
func (t *Trace) SampleRecords(i int) []Record {
	return t.appendSampleRecords(make([]Record, 0, t.samples[i].W()), i)
}

func (t *Trace) appendSampleRecords(out []Record, si int) []Record {
	s := &t.samples[si]
	for i := s.Lo; i < s.Hi; i++ {
		out = append(out, t.At(i))
	}
	return out
}

// SampleAt materialises sample i in interchange form: identity plus a
// fresh Records slice.
func (t *Trace) SampleAt(i int) *Sample {
	s := t.samples[i]
	return &Sample{Seq: s.Seq, CPU: s.CPU, TriggerLoads: s.TriggerLoads,
		Records: t.SampleRecords(i)}
}

// AllSamples materialises every sample in interchange form — the
// compatibility walk for callers that want the old []*Sample shape.
func (t *Trace) AllSamples() []*Sample {
	out := make([]*Sample, len(t.samples))
	for i := range t.samples {
		out[i] = t.SampleAt(i)
	}
	return out
}

// intern returns the id of a proc name, adding it to the table on first
// sight (first-appearance order, the determinism contract of the wire
// format).
func (t *Trace) intern(proc string) uint32 {
	// Consecutive records overwhelmingly share a procedure, so check the
	// previous record's name before paying for a map lookup. The probe
	// uses only existing columns — no cache state that could differ
	// between an appended and a decoded trace.
	if n := len(t.procIDs); n > 0 {
		if id := t.procIDs[n-1]; proc == t.procs[id] {
			return id
		}
	}
	if t.procIdx == nil {
		t.procIdx = make(map[string]uint32, 8)
		for i, p := range t.procs {
			t.procIdx[p] = uint32(i)
		}
	}
	if id, ok := t.procIdx[proc]; ok {
		return id
	}
	id := uint32(len(t.procs))
	t.procIdx[proc] = id
	t.procs = append(t.procs, proc)
	return id
}

func (t *Trace) mutable() {
	if t.view {
		panic("trace: appending to a shared-column view")
	}
}

// AddSample starts a new, empty sample; subsequent AppendRecord calls
// fill it.
func (t *Trace) AddSample(seq, cpu int, trigger uint64) {
	t.mutable()
	n := len(t.addrs)
	t.samples = append(t.samples, SampleInfo{Seq: seq, CPU: cpu,
		TriggerLoads: trigger, Lo: n, Hi: n})
}

// AppendRecord appends one record to the most recent sample.
func (t *Trace) AppendRecord(r *Record) {
	t.mutable()
	t.addrs = append(t.addrs, r.Addr)
	t.ips = append(t.ips, r.IP)
	t.ts = append(t.ts, r.TS)
	t.classes = append(t.classes, byte(r.Class))
	t.implied = append(t.implied, r.Implied)
	t.strides = append(t.strides, r.Stride)
	t.lines = append(t.lines, r.Line)
	t.procIDs = append(t.procIDs, t.intern(r.Proc))
	t.samples[len(t.samples)-1].Hi = len(t.addrs)
}

// AppendSample appends one interchange-form sample: its identity and
// every record, in order.
func (t *Trace) AppendSample(s *Sample) {
	t.AddSample(s.Seq, s.CPU, s.TriggerLoads)
	for i := range s.Records {
		t.AppendRecord(&s.Records[i])
	}
}

// SetSamples replaces the trace's contents with the given samples — the
// literal-construction convenience for tests and synthetic traces.
func (t *Trace) SetSamples(ss ...*Sample) {
	t.mutable()
	t.addrs, t.ips, t.ts = nil, nil, nil
	t.classes, t.implied = nil, nil
	t.strides, t.lines, t.procIDs = nil, nil, nil
	t.procs, t.procIdx, t.samples = nil, nil, nil
	n := 0
	for _, s := range ss {
		n += len(s.Records)
	}
	t.Reserve(len(ss), n)
	for _, s := range ss {
		t.AppendSample(s)
	}
}

// Reserve grows the arena to hold at least samples index entries and
// records column rows without further allocation.
func (t *Trace) Reserve(samples, records int) {
	t.mutable()
	if c := cap(t.samples) - len(t.samples); c < samples {
		grown := make([]SampleInfo, len(t.samples), len(t.samples)+samples)
		copy(grown, t.samples)
		t.samples = grown
	}
	if c := cap(t.addrs) - len(t.addrs); c < records {
		t.addrs = grow(t.addrs, records)
		t.ips = grow(t.ips, records)
		t.ts = grow(t.ts, records)
		t.classes = grow(t.classes, records)
		t.implied = grow(t.implied, records)
		t.strides = grow(t.strides, records)
		t.lines = grow(t.lines, records)
		t.procIDs = grow(t.procIDs, records)
	}
}

func grow[T any](s []T, n int) []T {
	out := make([]T, len(s), len(s)+n)
	copy(out, s)
	return out
}

// SampleSlice returns a read-only view over samples [start, end):
// shared columns, a sub-sliced offset index, and copied metadata.
// Callers restricting ρ (TotalLoads) rescale it on the view.
func (t *Trace) SampleSlice(start, end int) *Trace {
	nt := t.metaClone()
	nt.samples = t.samples[start:end:end]
	return nt
}

// FilterSamples returns a read-only view keeping the samples the
// predicate accepts (by sample index): shared columns, fresh index.
func (t *Trace) FilterSamples(keep func(i int) bool) *Trace {
	nt := t.metaClone()
	nt.samples = nil
	for i := range t.samples {
		if keep(i) {
			nt.samples = append(nt.samples, t.samples[i])
		}
	}
	return nt
}

// metaClone copies the trace's metadata and column references into a
// view marked read-only.
func (t *Trace) metaClone() *Trace {
	return &Trace{
		Module: t.Module, Mode: t.Mode, Period: t.Period,
		BufBytes: t.BufBytes, TotalLoads: t.TotalLoads, Bytes: t.Bytes,
		DroppedEvents: t.DroppedEvents, RecordedEvents: t.RecordedEvents,
		LostBytes: t.LostBytes,
		addrs:     t.addrs, ips: t.ips, ts: t.ts, classes: t.classes,
		implied: t.implied, strides: t.strides, lines: t.lines,
		procIDs: t.procIDs, procs: t.procs, samples: t.samples,
		view: true,
	}
}

// FilterProc returns a trace containing only records of the given
// procedures (a code-window restriction, §IV-B). Sample structure is
// preserved; empty samples are dropped. The result owns fresh columns.
func (t *Trace) FilterProc(procs ...string) *Trace {
	want := make(map[uint32]bool, len(procs))
	for _, p := range procs {
		for id, name := range t.procs {
			if name == p {
				want[uint32(id)] = true
			}
		}
	}
	nt := &Trace{Module: t.Module, Mode: t.Mode, Period: t.Period,
		BufBytes: t.BufBytes, TotalLoads: t.TotalLoads, Bytes: t.Bytes}
	for si := range t.samples {
		s := &t.samples[si]
		started := false
		for i := s.Lo; i < s.Hi; i++ {
			if !want[t.procIDs[i]] {
				continue
			}
			if !started {
				nt.AddSample(s.Seq, 0, s.TriggerLoads)
				started = true
			}
			r := t.At(i)
			nt.AppendRecord(&r)
		}
	}
	return nt
}

// Merge combines per-CPU traces (one per worker, as perf merges per-CPU
// PT buffers) into a single trace. Samples are tagged with their worker
// index, interleaved by trigger position, and renumbered; load counters
// and sizes are summed. The merged trace owns fresh columns.
func Merge(parts []*Trace) *Trace {
	if len(parts) == 0 {
		return &Trace{}
	}
	out := &Trace{
		Module: parts[0].Module, Mode: parts[0].Mode,
		Period: parts[0].Period, BufBytes: parts[0].BufBytes,
	}
	type tagged struct {
		part, si int
		trigger  uint64
	}
	var all []tagged
	records := 0
	for cpu, p := range parts {
		out.TotalLoads += p.TotalLoads
		out.Bytes += p.Bytes
		out.DroppedEvents += p.DroppedEvents
		out.RecordedEvents += p.RecordedEvents
		out.LostBytes += p.LostBytes
		records += p.NumRecords()
		for si := range p.samples {
			all = append(all, tagged{part: cpu, si: si, trigger: p.samples[si].TriggerLoads})
		}
	}
	// Interleave by per-worker trigger progress so the merged timeline
	// advances fairly across workers.
	sort.Slice(all, func(i, j int) bool {
		if all[i].trigger != all[j].trigger {
			return all[i].trigger < all[j].trigger
		}
		return all[i].part < all[j].part
	})
	out.Reserve(len(all), records)
	// Per-part proc-id remap tables, filled lazily as samples arrive.
	remaps := make([][]int32, len(parts))
	for seq, ts := range all {
		p := parts[ts.part]
		s := p.samples[ts.si]
		out.AddSample(seq, ts.part, s.TriggerLoads)
		remap := remaps[ts.part]
		if remap == nil {
			remap = make([]int32, len(p.procs))
			for i := range remap {
				remap[i] = -1
			}
			remaps[ts.part] = remap
		}
		// Remap can grow stale if p.procs grew since (it cannot: parts
		// are not mutated during Merge), so indexing is safe.
		out.addrs = append(out.addrs, p.addrs[s.Lo:s.Hi]...)
		out.ips = append(out.ips, p.ips[s.Lo:s.Hi]...)
		out.ts = append(out.ts, p.ts[s.Lo:s.Hi]...)
		out.classes = append(out.classes, p.classes[s.Lo:s.Hi]...)
		out.implied = append(out.implied, p.implied[s.Lo:s.Hi]...)
		out.strides = append(out.strides, p.strides[s.Lo:s.Hi]...)
		out.lines = append(out.lines, p.lines[s.Lo:s.Hi]...)
		for _, id := range p.procIDs[s.Lo:s.Hi] {
			if remap[id] < 0 {
				remap[id] = int32(out.intern(p.procs[id]))
			}
			out.procIDs = append(out.procIDs, uint32(remap[id]))
		}
		out.samples[len(out.samples)-1].Hi = len(out.addrs)
	}
	return out
}
