package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/memgaze/memgaze-go/internal/dataflow"
)

func synthetic(seed int64, samples, recsPer int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{
		Module: "synth", Mode: "sampled",
		Period: 10_000, BufBytes: 8 << 10,
		TotalLoads: uint64(samples) * 10_000,
	}
	procs := []string{"alpha", "beta", "gamma"}
	var ts uint64
	for s := 0; s < samples; s++ {
		smp := &Sample{Seq: s, TriggerLoads: uint64(s+1) * 10_000}
		for i := 0; i < recsPer; i++ {
			ts += uint64(rng.Intn(50))
			smp.Records = append(smp.Records, Record{
				IP:      0x401000 + uint64(rng.Intn(256))*6,
				Addr:    0x20000000 + uint64(rng.Intn(1<<16))*8,
				TS:      ts,
				Class:   dataflow.Class(rng.Intn(3)),
				Implied: uint32(rng.Intn(3)),
				Stride:  int32(rng.Intn(64) - 16),
				Line:    int32(rng.Intn(500)),
				Proc:    procs[rng.Intn(len(procs))],
			})
		}
		t.AppendSample(smp)
	}
	t.Bytes = uint64(t.NumRecords()) * 10
	t.RecordedEvents = uint64(t.NumRecords())
	t.LostBytes = uint64(rng.Intn(1 << 12))
	return t
}

func TestWriteReadRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		tr := synthetic(seed, 1+int(uint8(seed))%5, 50)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReadVersion1Compat pins backward compatibility: a version-1
// header (no LostBytes field) still reads, with LostBytes zero.
func TestReadVersion1Compat(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("MGTR")
	writeU := func(v uint64) {
		var b [10]byte
		n := binary.PutUvarint(b[:], v)
		buf.Write(b[:n])
	}
	writeStr := func(s string) { writeU(uint64(len(s))); buf.WriteString(s) }
	writeU(1) // version 1
	writeStr("old")
	writeStr("sampled")
	writeU(5000)    // period
	writeU(8 << 10) // buf bytes
	writeU(100_000) // total loads
	writeU(4096)    // bytes
	writeU(0)       // dropped
	writeU(42)      // recorded
	writeU(0)       // string table size
	writeU(0)       // samples
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Module != "old" || tr.RecordedEvents != 42 || tr.LostBytes != 0 {
		t.Errorf("v1 trace = %+v", tr)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("expected magic error")
	}
	var buf bytes.Buffer
	tr := synthetic(1, 2, 10)
	tr.Write(&buf)
	// Truncate mid-stream.
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("expected truncation error")
	}
}

// TestReadHostileHeader pins the untrusted-input hardening: a tiny body
// whose header varints claim enormous string lengths or element counts
// must fail with a decode error, not force a giant up-front allocation
// (the served POST /v1/traces path feeds attacker-controlled bytes here).
func TestReadHostileHeader(t *testing.T) {
	writeU := func(buf *bytes.Buffer, v uint64) {
		var b [10]byte
		n := binary.PutUvarint(b[:], v)
		buf.Write(b[:n])
	}
	writeStr := func(buf *bytes.Buffer, s string) { writeU(buf, uint64(len(s))); buf.WriteString(s) }
	// header writes "MGTR", version 2, module+mode, and the seven
	// fixed header varints, leaving the cursor at the string-table count.
	header := func() *bytes.Buffer {
		var buf bytes.Buffer
		buf.WriteString("MGTR")
		writeU(&buf, 2)
		writeStr(&buf, "mod")
		writeStr(&buf, "sampled")
		for i := 0; i < 7; i++ {
			writeU(&buf, 0)
		}
		return &buf
	}

	cases := map[string]*bytes.Buffer{}

	// Module length claims 2^40 bytes.
	huge := bytes.NewBufferString("MGTR")
	writeU(huge, 2)
	writeU(huge, 1<<40) // module string length
	cases["huge string length"] = huge

	// String table claims 2^35 entries, then the body ends.
	nstr := header()
	writeU(nstr, 1<<35)
	cases["huge string count"] = nstr

	// One sample claiming 2^35 records, then the body ends.
	nrec := header()
	writeU(nrec, 0) // string table size
	writeU(nrec, 1) // one sample
	writeU(nrec, 0) // seq
	writeU(nrec, 0) // cpu
	writeU(nrec, 0) // trigger loads
	writeU(nrec, 1<<35)
	cases["huge record count"] = nrec

	for name, buf := range cases {
		if len(buf.Bytes()) > 64 {
			t.Fatalf("%s: hostile body is %d bytes, want tiny", name, buf.Len())
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("%s: hostile body accepted", name)
		}
	}
}

func TestKappaAndRho(t *testing.T) {
	tr := &Trace{Period: 1000, TotalLoads: 100_000}
	smp := &Sample{}
	for i := 0; i < 100; i++ {
		// Every other record implies one constant: κ = 1.5.
		smp.Records = append(smp.Records, Record{Addr: uint64(i), Implied: uint32(i % 2)})
	}
	tr.SetSamples(smp)
	if k := tr.Kappa(); k != 1.5 {
		t.Errorf("kappa = %v, want 1.5", k)
	}
	// ρ = 100000 / (1.5 * 100)
	if r := tr.Rho(); r != 100_000.0/150.0 {
		t.Errorf("rho = %v", r)
	}
	// Empty trace: identities.
	empty := &Trace{}
	if empty.Kappa() != 1 || empty.Rho() != 1 {
		t.Error("empty trace identities broken")
	}
	// Full trace: rho clamps to 1.
	full := &Trace{TotalLoads: 100}
	full.SetSamples(&Sample{Records: make([]Record, 100)})
	if full.Rho() != 1 {
		t.Errorf("full-trace rho = %v, want 1", full.Rho())
	}
}

func TestFilterProc(t *testing.T) {
	tr := synthetic(7, 4, 30)
	ft := tr.FilterProc("alpha")
	if ft.NumRecords() == 0 {
		t.Fatal("filter removed everything")
	}
	for _, s := range ft.AllSamples() {
		for _, r := range s.Records {
			if r.Proc != "alpha" {
				t.Fatalf("leaked proc %q", r.Proc)
			}
		}
	}
	// Conservation: alpha + beta + gamma = all.
	total := 0
	for _, p := range []string{"alpha", "beta", "gamma"} {
		total += tr.FilterProc(p).NumRecords()
	}
	if total != tr.NumRecords() {
		t.Errorf("partition lost records: %d != %d", total, tr.NumRecords())
	}
}

func TestMeanW(t *testing.T) {
	tr := synthetic(3, 4, 25)
	if w := tr.MeanW(); w != 25 {
		t.Errorf("meanW = %v, want 25", w)
	}
}

func TestMergeInterleavesPerCPUTraces(t *testing.T) {
	a := synthetic(1, 3, 10)
	b := synthetic(2, 2, 10)
	m := Merge([]*Trace{a, b})
	if m.NumRecords() != a.NumRecords()+b.NumRecords() {
		t.Errorf("merged records %d, want %d", m.NumRecords(), a.NumRecords()+b.NumRecords())
	}
	if m.TotalLoads != a.TotalLoads+b.TotalLoads {
		t.Errorf("merged loads %d", m.TotalLoads)
	}
	cpus := map[int]int{}
	for i, s := range m.AllSamples() {
		cpus[s.CPU]++
		if s.Seq != i {
			t.Errorf("sample %d has seq %d", i, s.Seq)
		}
		if i > 0 && s.TriggerLoads < m.SampleAt(i-1).TriggerLoads {
			t.Error("merged samples not ordered by trigger progress")
		}
	}
	if cpus[0] != 3 || cpus[1] != 2 {
		t.Errorf("cpu sample counts = %v", cpus)
	}
	// Merge must not mutate the inputs.
	if a.SampleAt(0).CPU != 0 || a.SampleAt(0).Seq != 0 {
		t.Error("merge mutated input trace")
	}
	// Degenerate merges.
	if e := Merge(nil); e.NumRecords() != 0 {
		t.Error("empty merge not empty")
	}
}

func TestMergeRoundtripsThroughFile(t *testing.T) {
	m := Merge([]*Trace{synthetic(3, 2, 5), synthetic(4, 2, 5)})
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Error("merged trace changed across serialization (CPU field lost?)")
	}
}
