package trace

// MGTR wire format.
//
// All versions share the frame: "MGTR" magic, uvarint version, module
// and mode strings, eight uvarint metadata fields (seven before v2's
// LostBytes), an interned proc-name table, and a sample section.
//
// v1/v2 are row-oriented: per sample a record count, then each record's
// eight fields as varints with per-sample delta state on IP/Addr/TS.
// The readers are kept forever; WriteLegacy still produces them for
// fixtures and size comparisons.
//
// v3 is columnar, mirroring the in-memory arena. After the header and
// string table comes the sample index — per sample (seq, cpu, trigger,
// nrecs) varints — and then the eight columns, each a one-byte tag
// followed by its payload:
//
//	tag 0: raw     — one uvarint per record
//	tag 1: RLE     — (value, runlen) uvarint pairs covering the column
//
// The writer computes both sizes and emits whichever is smaller, so
// constant columns (classes in a single-class trace, proc ids inside
// one function, zero strides) collapse to a few bytes — the paper's
// §III-B observation that Strided and Constant loads compress, applied
// to storage. Column values are transformed before encoding:
//
//	addrs, ips : per-sample base, zigzag delta (resets each sample)
//	ts         : per-sample delta
//	strides, lines : zigzag
//	classes, implied, proc ids : identity
//
// Determinism contract: the proc table is written in first-use record
// order and contains only used names, so encoding is a pure function
// of trace content — the same records produce the same bytes whatever
// construction path (builder, decode, merge, view) produced them, and
// the content hash (SHA-256 of the encoding) is stable across a
// decode/re-encode round trip.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math/bits"
)

const fileVersion = 3

// maxSection bounds a single length-prefixed string in the MGTR
// format, so a corrupt or hostile length prefix cannot force a huge
// allocation before the read fails.
const maxSection = 1 << 30

// maxPrealloc bounds slice capacity reserved from a count read out of
// the header. Counts above it are still honoured — the slices grow by
// append, so an inflated count fails with io.EOF once the input runs
// out instead of OOMing up front.
const maxPrealloc = 1 << 16

// maxRecords bounds the total record count a v3 sample index may
// claim. A tiny hostile body declaring 2^35 records fails here — a
// decode error the server maps to 400 invalid_trace — instead of
// driving column decoding toward enormous allocations. Legitimate
// traces sit many orders of magnitude below the cap.
const maxRecords = 1 << 32

const (
	colRaw = 0 // one uvarint per record
	colRLE = 1 // (value, runlen) uvarint pairs
)

// Write serialises the trace in MGTR v3, the columnar format described
// in the package's wire-format comment.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	// One hoisted scratch buffer: a per-call array would escape into
	// bw.Write and cost an allocation per varint.
	var vb [binary.MaxVarintLen64]byte
	writeU := func(v uint64) { n := binary.PutUvarint(vb[:], v); bw.Write(vb[:n]) }
	writeStr := func(s string) { writeU(uint64(len(s))); bw.WriteString(s) }

	bw.WriteString("MGTR")
	writeU(fileVersion)
	writeStr(t.Module)
	writeStr(t.Mode)
	writeU(t.Period)
	writeU(uint64(t.BufBytes))
	writeU(t.TotalLoads)
	writeU(t.Bytes)
	writeU(t.DroppedEvents)
	writeU(t.RecordedEvents)
	writeU(t.LostBytes)

	// Wire proc table: used names in first-use record order, whatever
	// order the in-memory table has (views and merges may hold unused
	// or differently-ordered entries).
	remap := make([]int64, len(t.procs))
	for i := range remap {
		remap[i] = -1
	}
	var strs []string
	for si := range t.samples {
		s := &t.samples[si]
		for _, id := range t.procIDs[s.Lo:s.Hi] {
			if remap[id] < 0 {
				remap[id] = int64(len(strs))
				strs = append(strs, t.procs[id])
			}
		}
	}
	writeU(uint64(len(strs)))
	for _, s := range strs {
		writeStr(s)
	}

	// Sample index.
	writeU(uint64(len(t.samples)))
	total := 0
	for i := range t.samples {
		s := &t.samples[i]
		writeU(uint64(s.Seq))
		writeU(uint64(s.CPU))
		writeU(s.TriggerLoads)
		writeU(uint64(s.Hi - s.Lo))
		total += s.Hi - s.Lo
	}

	// Columns. One scratch buffer holds each column's transformed
	// values in turn; fill walks samples so views (absolute, possibly
	// non-dense ranges) serialise exactly like owned traces.
	scratch := make([]uint64, total)
	fill := func(f func(dst []uint64, lo, hi int) int) {
		n := 0
		for i := range t.samples {
			s := &t.samples[i]
			n += f(scratch[n:], s.Lo, s.Hi)
		}
	}

	fill(func(dst []uint64, lo, hi int) int {
		var prev uint64
		for i := lo; i < hi; i++ {
			dst[i-lo] = zigzag(int64(t.addrs[i] - prev))
			prev = t.addrs[i]
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		var prev uint64
		for i := lo; i < hi; i++ {
			dst[i-lo] = zigzag(int64(t.ips[i] - prev))
			prev = t.ips[i]
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		var prev uint64
		for i := lo; i < hi; i++ {
			dst[i-lo] = t.ts[i] - prev
			prev = t.ts[i]
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		for i := lo; i < hi; i++ {
			dst[i-lo] = uint64(t.classes[i])
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		for i := lo; i < hi; i++ {
			dst[i-lo] = uint64(t.implied[i])
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		for i := lo; i < hi; i++ {
			dst[i-lo] = zigzag(int64(t.strides[i]))
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		for i := lo; i < hi; i++ {
			dst[i-lo] = zigzag(int64(t.lines[i]))
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	fill(func(dst []uint64, lo, hi int) int {
		for i := lo; i < hi; i++ {
			dst[i-lo] = uint64(remap[t.procIDs[i]])
		}
		return hi - lo
	})
	writeColumn(bw, writeU, scratch)

	return bw.Flush()
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// writeColumn emits one column: whichever of raw-varint or RLE encodes
// vals in fewer bytes. The choice is deterministic (strictly-smaller
// wins for RLE) so identical values always produce identical bytes.
func writeColumn(bw *bufio.Writer, writeU func(uint64), vals []uint64) {
	rawSize, rleSize := 0, 0
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		rawSize += uvarintLen(vals[i]) * (j - i)
		rleSize += uvarintLen(vals[i]) + uvarintLen(uint64(j-i))
		i = j
	}
	if rleSize < rawSize {
		bw.WriteByte(colRLE)
		for i := 0; i < len(vals); {
			j := i + 1
			for j < len(vals) && vals[j] == vals[i] {
				j++
			}
			writeU(vals[i])
			writeU(uint64(j - i))
			i = j
		}
		return
	}
	bw.WriteByte(colRaw)
	for _, v := range vals {
		writeU(v)
	}
}

// Read deserialises a trace in any MGTR version (v1–v3).
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if string(magic[:]) != "MGTR" {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readU := func() (uint64, error) { return binary.ReadUvarint(br) }
	readStr := func() (string, error) {
		n, err := readU()
		if err != nil {
			return "", err
		}
		if n > maxSection {
			return "", fmt.Errorf("trace: string of %d bytes exceeds limit", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	ver, err := readU()
	if err != nil {
		return nil, err
	}
	if ver < 1 || ver > fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	if t.Module, err = readStr(); err != nil {
		return nil, err
	}
	if t.Mode, err = readStr(); err != nil {
		return nil, err
	}
	gets := []*uint64{&t.Period, nil, &t.TotalLoads, &t.Bytes, &t.DroppedEvents, &t.RecordedEvents}
	if ver >= 2 {
		gets = append(gets, &t.LostBytes)
	}
	for i, p := range gets {
		v, err := readU()
		if err != nil {
			return nil, err
		}
		if i == 1 {
			t.BufBytes = int(v)
		} else {
			*p = v
		}
	}
	nstr, err := readU()
	if err != nil {
		return nil, err
	}
	strs := make([]string, 0, min(nstr, maxPrealloc))
	for i := uint64(0); i < nstr; i++ {
		s, err := readStr()
		if err != nil {
			return nil, err
		}
		strs = append(strs, s)
	}
	if ver >= 3 {
		err = readV3Body(t, br, readU, strs)
	} else {
		err = readLegacyBody(t, readU, strs)
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// readV3Body reads the columnar sample index and columns.
func readV3Body(t *Trace, br *bufio.Reader, readU func() (uint64, error), strs []string) error {
	nsmp, err := readU()
	if err != nil {
		return err
	}
	t.samples = make([]SampleInfo, 0, min(nsmp, maxPrealloc))
	var total uint64
	for si := uint64(0); si < nsmp; si++ {
		seq, err := readU()
		if err != nil {
			return err
		}
		cpu, err := readU()
		if err != nil {
			return err
		}
		trg, err := readU()
		if err != nil {
			return err
		}
		nrec, err := readU()
		if err != nil {
			return err
		}
		total += nrec
		if total > maxRecords {
			return fmt.Errorf("trace: implausible record count %d", total)
		}
		t.samples = append(t.samples, SampleInfo{Seq: int(seq), CPU: int(cpu),
			TriggerLoads: trg, Lo: int(total - nrec), Hi: int(total)})
	}
	n := int(total)

	// Each column grows by append with capped preallocation, so a
	// claimed-but-truncated count fails cheaply at EOF. RLE run
	// lengths are validated against the remaining column capacity.
	readCol := func(push func(v uint64)) error {
		tag, err := br.ReadByte()
		if err != nil {
			return err
		}
		switch tag {
		case colRaw:
			for i := 0; i < n; i++ {
				v, err := readU()
				if err != nil {
					return err
				}
				push(v)
			}
		case colRLE:
			for left := n; left > 0; {
				v, err := readU()
				if err != nil {
					return err
				}
				run, err := readU()
				if err != nil {
					return err
				}
				if run == 0 || run > uint64(left) {
					return fmt.Errorf("trace: bad run length %d (%d records left)", run, left)
				}
				for i := uint64(0); i < run; i++ {
					push(v)
				}
				left -= int(run)
			}
		default:
			return fmt.Errorf("trace: bad column tag %d", tag)
		}
		return nil
	}
	capN := min(n, maxPrealloc)

	t.addrs = make([]uint64, 0, capN)
	if err := readCol(func(v uint64) { t.addrs = append(t.addrs, v) }); err != nil {
		return err
	}
	for i := range t.samples {
		s := &t.samples[i]
		var prev uint64
		for j := s.Lo; j < s.Hi; j++ {
			prev += uint64(unzigzag(t.addrs[j]))
			t.addrs[j] = prev
		}
	}

	t.ips = make([]uint64, 0, capN)
	if err := readCol(func(v uint64) { t.ips = append(t.ips, v) }); err != nil {
		return err
	}
	for i := range t.samples {
		s := &t.samples[i]
		var prev uint64
		for j := s.Lo; j < s.Hi; j++ {
			prev += uint64(unzigzag(t.ips[j]))
			t.ips[j] = prev
		}
	}

	t.ts = make([]uint64, 0, capN)
	if err := readCol(func(v uint64) { t.ts = append(t.ts, v) }); err != nil {
		return err
	}
	for i := range t.samples {
		s := &t.samples[i]
		var prev uint64
		for j := s.Lo; j < s.Hi; j++ {
			prev += t.ts[j]
			t.ts[j] = prev
		}
	}

	t.classes = make([]byte, 0, capN)
	if err := readCol(func(v uint64) { t.classes = append(t.classes, byte(v)) }); err != nil {
		return err
	}
	t.implied = make([]uint32, 0, capN)
	if err := readCol(func(v uint64) { t.implied = append(t.implied, uint32(v)) }); err != nil {
		return err
	}
	t.strides = make([]int32, 0, capN)
	if err := readCol(func(v uint64) { t.strides = append(t.strides, int32(unzigzag(v))) }); err != nil {
		return err
	}
	t.lines = make([]int32, 0, capN)
	if err := readCol(func(v uint64) { t.lines = append(t.lines, int32(unzigzag(v))) }); err != nil {
		return err
	}
	t.procIDs = make([]uint32, 0, capN)
	if err := readCol(func(v uint64) { t.procIDs = append(t.procIDs, uint32(v)) }); err != nil {
		return err
	}
	for _, id := range t.procIDs {
		if uint64(id) >= uint64(len(strs)) {
			return fmt.Errorf("trace: bad string index %d", id)
		}
	}
	if len(strs) > 0 {
		t.procs = strs
		t.procIdx = make(map[string]uint32, len(strs))
		for i, s := range strs {
			t.procIdx[s] = uint32(i)
		}
	}
	return nil
}

// readLegacyBody reads the row-oriented v1/v2 sample section into the
// columnar arena.
func readLegacyBody(t *Trace, readU func() (uint64, error), strs []string) error {
	nstr := uint64(len(strs))
	// Lazy remap from file string index to interned proc id preserves
	// first-use order — the determinism contract — even if the file's
	// table holds unused entries.
	remap := make([]int64, len(strs))
	for i := range remap {
		remap[i] = -1
	}
	nsmp, err := readU()
	if err != nil {
		return err
	}
	t.samples = make([]SampleInfo, 0, min(nsmp, maxPrealloc))
	for si := uint64(0); si < nsmp; si++ {
		seq, err := readU()
		if err != nil {
			return err
		}
		cpu, err := readU()
		if err != nil {
			return err
		}
		trg, err := readU()
		if err != nil {
			return err
		}
		nrec, err := readU()
		if err != nil {
			return err
		}
		t.AddSample(int(seq), int(cpu), trg)
		var lastIP, lastAddr, lastTS uint64
		for ri := uint64(0); ri < nrec; ri++ {
			dip, err := readU()
			if err != nil {
				return err
			}
			daddr, err := readU()
			if err != nil {
				return err
			}
			dts, err := readU()
			if err != nil {
				return err
			}
			cls, err := readU()
			if err != nil {
				return err
			}
			imp, err := readU()
			if err != nil {
				return err
			}
			stride, err := readU()
			if err != nil {
				return err
			}
			line, err := readU()
			if err != nil {
				return err
			}
			sidx, err := readU()
			if err != nil {
				return err
			}
			if sidx >= nstr {
				return fmt.Errorf("trace: bad string index %d", sidx)
			}
			lastIP += uint64(unzigzag(dip))
			lastAddr += uint64(unzigzag(daddr))
			lastTS += dts
			if remap[sidx] < 0 {
				remap[sidx] = int64(t.intern(strs[sidx]))
			}
			t.addrs = append(t.addrs, lastAddr)
			t.ips = append(t.ips, lastIP)
			t.ts = append(t.ts, lastTS)
			t.classes = append(t.classes, byte(cls))
			t.implied = append(t.implied, uint32(imp))
			t.strides = append(t.strides, int32(unzigzag(stride)))
			t.lines = append(t.lines, int32(unzigzag(line)))
			t.procIDs = append(t.procIDs, uint32(remap[sidx]))
		}
		t.samples[len(t.samples)-1].Hi = len(t.addrs)
	}
	return nil
}

// WriteLegacy serialises the trace in the row-oriented MGTR v1 or v2
// format — kept for cross-version fixtures, size comparisons, and
// downgrade paths. Current writers use Write (v3).
func (t *Trace) WriteLegacy(w io.Writer, version int) error {
	if version < 1 || version > 2 {
		return fmt.Errorf("trace: WriteLegacy supports versions 1-2, got %d", version)
	}
	bw := bufio.NewWriter(w)
	// One hoisted scratch buffer: a per-call array would escape into
	// bw.Write and cost an allocation per varint.
	var vb [binary.MaxVarintLen64]byte
	writeU := func(v uint64) { n := binary.PutUvarint(vb[:], v); bw.Write(vb[:n]) }
	writeStr := func(s string) { writeU(uint64(len(s))); bw.WriteString(s) }

	remap := make([]int64, len(t.procs))
	for i := range remap {
		remap[i] = -1
	}
	var strs []string
	for si := range t.samples {
		s := &t.samples[si]
		for _, id := range t.procIDs[s.Lo:s.Hi] {
			if remap[id] < 0 {
				remap[id] = int64(len(strs))
				strs = append(strs, t.procs[id])
			}
		}
	}

	bw.WriteString("MGTR")
	writeU(uint64(version))
	writeStr(t.Module)
	writeStr(t.Mode)
	writeU(t.Period)
	writeU(uint64(t.BufBytes))
	writeU(t.TotalLoads)
	writeU(t.Bytes)
	writeU(t.DroppedEvents)
	writeU(t.RecordedEvents)
	if version >= 2 {
		writeU(t.LostBytes)
	}
	writeU(uint64(len(strs)))
	for _, s := range strs {
		writeStr(s)
	}
	writeU(uint64(len(t.samples)))
	for si := range t.samples {
		s := &t.samples[si]
		writeU(uint64(s.Seq))
		writeU(uint64(s.CPU))
		writeU(s.TriggerLoads)
		writeU(uint64(s.Hi - s.Lo))
		var lastIP, lastAddr, lastTS uint64
		for i := s.Lo; i < s.Hi; i++ {
			writeU(zigzag(int64(t.ips[i] - lastIP)))
			writeU(zigzag(int64(t.addrs[i] - lastAddr)))
			writeU(t.ts[i] - lastTS)
			writeU(uint64(t.classes[i]))
			writeU(uint64(t.implied[i]))
			writeU(zigzag(int64(t.strides[i])))
			writeU(zigzag(int64(t.lines[i])))
			writeU(uint64(remap[t.procIDs[i]]))
			lastIP, lastAddr, lastTS = t.ips[i], t.addrs[i], t.ts[i]
		}
	}
	return bw.Flush()
}

// EncodeLegacy serialises the trace to MGTR v1 or v2 bytes in memory.
func (t *Trace) EncodeLegacy(version int) ([]byte, error) {
	var buf bytes.Buffer
	if err := t.WriteLegacy(&buf, version); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Encode serialises the trace to its MGTR binary form in memory — the
// HTTP-friendly counterpart of Write. Decode inverts it.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode deserialises a trace from its MGTR binary form, as produced by
// Encode or Write (any version).
func Decode(b []byte) (*Trace, error) {
	return Read(bytes.NewReader(b))
}

// Hash returns the trace's content hash: the hex SHA-256 of its MGTR
// encoding. Two traces hash equal exactly when their serialised forms
// are byte-identical, so the hash survives a Write/Read round trip and
// is a stable identity for content-addressed stores.
func (t *Trace) Hash() string {
	h := sha256.New()
	t.Write(h) // hash.Hash writes never fail
	return hex.EncodeToString(h.Sum(nil))
}

// EncodedSize returns the size in bytes of the trace's MGTR encoding
// without materialising it.
func (t *Trace) EncodedSize() int64 {
	var cw countWriter
	t.Write(&cw)
	return cw.n
}

// HashAndSize returns Hash and EncodedSize from a single serialisation
// pass — what an upload path wants, instead of walking the trace twice.
func (t *Trace) HashAndSize() (string, int64) {
	h := NewHasher()
	t.Write(h)
	return h.Sum()
}

// WriteTo streams the trace's MGTR encoding to w and reports the bytes
// written, implementing io.WriterTo: io.Copy-style consumers — a raw
// download response, a store spilling to disk — serialise a trace
// without materialising the encoding in memory first.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var cw countWriter
	err := t.Write(io.MultiWriter(&cw, w))
	return cw.n, err
}

// Hasher computes a trace's content identity incrementally: an
// io.Writer that hashes and counts every MGTR byte written through it.
// Stream a trace into one (t.Write(h), or tee a serialised body through
// it as it is read) and Sum returns the same pair as HashAndSize —
// without the encoding ever being resident.
type Hasher struct {
	h hash.Hash
	n int64
}

// NewHasher returns a Hasher ready to receive MGTR bytes.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// Write feeds bytes into the identity; it never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	h.h.Write(p)
	h.n += int64(len(p))
	return len(p), nil
}

// Sum returns the content hash of the bytes written so far and their
// count. It does not consume the state: more writes may follow.
func (h *Hasher) Sum() (id string, size int64) {
	return hex.EncodeToString(h.h.Sum(nil)), h.n
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
