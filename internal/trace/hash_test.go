package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// TestEncodeDecode pins the byte-slice convenience wrappers against
// the streaming Write/Read pair.
func TestEncodeDecode(t *testing.T) {
	tr := synthetic(7, 3, 40)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Error("Encode differs from Write")
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("Decode(Encode(t)) != t")
	}
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Error("truncated decode accepted")
	}
}

// TestHash pins the content address: deterministic, equal for equal
// content, different for different content, and sized like SHA-256.
func TestHash(t *testing.T) {
	a, b := synthetic(7, 3, 40), synthetic(7, 3, 40)
	if a.Hash() != b.Hash() {
		t.Error("equal traces hash differently")
	}
	if got := len(a.Hash()); got != 64 {
		t.Errorf("hash length %d, want 64 hex chars", got)
	}
	if a.Hash() != a.Hash() {
		t.Error("hash not deterministic")
	}
	c := synthetic(8, 3, 40)
	if a.Hash() == c.Hash() {
		t.Error("different traces collide")
	}
	// A single-record mutation must change the hash.
	d := synthetic(7, 3, 40)
	d.Addrs()[0]++
	if a.Hash() == d.Hash() {
		t.Error("mutated trace hash unchanged")
	}
}

// TestEncodedSize pins the store accounting helper.
func TestEncodedSize(t *testing.T) {
	tr := synthetic(7, 3, 40)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.EncodedSize(); got != int64(len(enc)) {
		t.Errorf("EncodedSize = %d, want %d", got, len(enc))
	}
}

// TestHashAndSize pins the single-pass upload helper against the
// separate Hash and EncodedSize walks.
func TestHashAndSize(t *testing.T) {
	tr := synthetic(7, 3, 40)
	hash, size := tr.HashAndSize()
	if want := tr.Hash(); hash != want {
		t.Errorf("HashAndSize hash = %s, want %s", hash, want)
	}
	if want := tr.EncodedSize(); size != want {
		t.Errorf("HashAndSize size = %d, want %d", size, want)
	}
}

// TestWriteTo pins the io.WriterTo variant: same bytes as Write, with
// the byte count reported.
func TestWriteTo(t *testing.T) {
	tr := synthetic(7, 3, 40)
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Error("WriteTo bytes differ from Encode")
	}
	if n != int64(len(enc)) {
		t.Errorf("WriteTo reported %d bytes, want %d", n, len(enc))
	}
}

// TestHasher pins the incremental identity: bytes fed chunk by chunk —
// as an upload body arrives — yield the same (hash, size) pair as the
// single-pass HashAndSize, regardless of chunking.
func TestHasher(t *testing.T) {
	tr := synthetic(7, 3, 40)
	wantID, wantSize := tr.HashAndSize()

	// Streamed whole via WriteTo.
	h := NewHasher()
	if _, err := tr.WriteTo(h); err != nil {
		t.Fatal(err)
	}
	if id, size := h.Sum(); id != wantID || size != wantSize {
		t.Errorf("WriteTo into Hasher = (%s, %d), want (%s, %d)", id, size, wantID, wantSize)
	}

	// Fed byte by byte, as a chunked transfer would.
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHasher()
	for _, b := range enc {
		h2.Write([]byte{b})
	}
	if id, size := h2.Sum(); id != wantID || size != wantSize {
		t.Errorf("byte-wise Hasher = (%s, %d), want (%s, %d)", id, size, wantID, wantSize)
	}
}
