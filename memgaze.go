// Package memgaze is the public API of MemGaze-Go, a reproduction of
// "MemGaze: Rapid and Effective Load-Level Memory Trace Analysis"
// (IEEE CLUSTER 2022): low-overhead, load-level memory trace collection
// via sampled ptwrite-style tracing, plus multi-resolution analyses of
// data movement, reuse, footprint, and access patterns.
//
// The package re-exports the stable surface of the internal packages so
// downstream users need a single import:
//
//	import "github.com/memgaze/memgaze-go"
//
//	res, err := memgaze.Run(workload, memgaze.DefaultConfig())
//	diags := memgaze.FunctionDiagnostics(res.Trace, 64)
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture.
package memgaze

import (
	"github.com/memgaze/memgaze-go/internal/analysis"
	"github.com/memgaze/memgaze-go/internal/cache"
	"github.com/memgaze/memgaze-go/internal/core"
	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/heatmap"
	"github.com/memgaze/memgaze-go/internal/instrument"
	"github.com/memgaze/memgaze-go/internal/interval"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/vm"
	"github.com/memgaze/memgaze-go/internal/zoom"
)

// Pipeline configuration and drivers (Fig. 1 of the paper).
type (
	// Config selects the collection regime, sampling period, buffer
	// size, and instrumentation scope.
	Config = core.Config
	// Workload is an IR workload: a deterministic builder of a program
	// plus its address space.
	Workload = core.Workload
	// FuncWorkload adapts a build function to Workload.
	FuncWorkload = core.FuncWorkload
	// Result is the outcome of an IR pipeline run.
	Result = core.Result
	// App is a sites-based application workload.
	App = core.App
	// AppResult is the outcome of an application pipeline run.
	AppResult = core.AppResult
	// ParallelApp executes across several workers with per-CPU collectors.
	ParallelApp = core.ParallelApp
)

// DefaultConfig returns a typical application configuration: continuous
// sampling, 5M-load period, 8 KiB buffer, compression on.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes the full IR pipeline: build, instrument, baseline run,
// traced run, decode.
func Run(w Workload, cfg Config) (*Result, error) { return core.Run(w, cfg) }

// RunApp executes the application pipeline on a sites-based workload.
func RunApp(app App, cfg Config) (*AppResult, error) { return core.RunApp(app, cfg) }

// RunAppParallel executes an application across workers with per-CPU
// trace collectors, merging the traces.
func RunAppParallel(app ParallelApp, cfg Config, workers int) (*AppResult, error) {
	return core.RunAppParallel(app, cfg, workers)
}

// Collection modes (§III-C, §VI-B).
const (
	// ModeContinuous is MemGaze with PT running continuously.
	ModeContinuous = pt.ModeContinuous
	// ModeSampledPT is MemGaze-opt: PT enabled only around samples.
	ModeSampledPT = pt.ModeSampledPT
	// ModeFull is bandwidth-limited full tracing with perf-style drops.
	ModeFull = pt.ModeFull
)

// Trace data model (§III-C).
type (
	// Trace is a collected memory trace.
	Trace = trace.Trace
	// Sample is one recorded window of w accesses.
	Sample = trace.Sample
	// Record is one decoded load-level access.
	Record = trace.Record
)

// ReadTrace deserialises a trace written by Trace.Write.
var ReadTrace = trace.Read

// MergeTraces combines per-CPU traces into one.
var MergeTraces = trace.Merge

// Load classification (§III-B).
type (
	// Class is a load access class: Constant, Strided, or Irregular.
	Class = dataflow.Class
	// Annotations is the auxiliary annotation file emitted by the
	// instrumentor.
	Annotations = instrument.Annotations
)

// Load classes.
const (
	Constant  = dataflow.Constant
	Strided   = dataflow.Strided
	Irregular = dataflow.Irregular
)

// Analyses (§IV–§V).
type (
	// Diag is a footprint access diagnostic for a code window or region.
	Diag = analysis.Diag
	// Region is a named address range.
	Region = analysis.Region
	// WindowMetrics is one point of a trace-window histogram.
	WindowMetrics = analysis.WindowMetrics
	// StackDist computes spatio-temporal reuse distance and interval.
	StackDist = analysis.StackDist
	// Confidence reports estimate stability for a code window (§VI-A).
	Confidence = analysis.Confidence
	// IntervalTree is the multi-resolution execution-time tree (Fig. 4).
	IntervalTree = interval.Tree
	// ZoomNode is a region of the location zoom tree (Fig. 5).
	ZoomNode = zoom.Node
	// Heatmap is a location × time distribution (Fig. 8).
	Heatmap = heatmap.Heatmap
)

// NewStackDist creates a reuse-distance tracker at a block granularity.
var NewStackDist = analysis.NewStackDist

// FunctionDiagnostics computes per-function footprint access diagnostics.
var FunctionDiagnostics = analysis.FunctionDiagnostics

// RegionDiagnostics computes diagnostics per memory region.
var RegionDiagnostics = analysis.RegionDiagnostics

// WindowHistogram computes footprint histograms over dynamic window sizes.
var WindowHistogram = analysis.WindowHistogram

// PowerOfTwoWindows returns {2^lo..2^hi}.
var PowerOfTwoWindows = analysis.PowerOfTwoWindows

// MAPE compares two window histograms (Fig. 6's metric).
var MAPE = analysis.MAPE

// WorkingSet computes the page-granularity working-set curve (§V-B).
var WorkingSet = analysis.WorkingSet

// SuggestROI returns the hottest procedures covering a load share (§II).
var SuggestROI = analysis.SuggestROI

// SampleConfidence flags undersampled code windows (§VI-A).
var SampleConfidence = analysis.SampleConfidence

// MissRatioCurve predicts LRU miss ratios from sampled reuse distances.
var MissRatioCurve = analysis.MissRatioCurve

// MissRatioBounds brackets the miss ratio at one capacity.
var MissRatioBounds = analysis.MissRatioBounds

// BuildIntervalTree constructs the execution interval tree.
var BuildIntervalTree = interval.Build

// BuildZoomTree runs the recursive location zoom.
var BuildZoomTree = zoom.Build

// ZoomLeaves returns the final regions of a zoom tree.
var ZoomLeaves = zoom.Leaves

// BuildZoomOverTime runs the zoom per time interval (time × location).
var BuildZoomOverTime = zoom.BuildOverTime

// BuildHeatmap computes a location × time heatmap over a range.
var BuildHeatmap = heatmap.Build

// Machine model.
type (
	// CostModel assigns cycle costs to instruction classes.
	CostModel = vm.CostModel
	// CacheConfig sizes the optional cache timing model.
	CacheConfig = cache.Config
)

// DefaultCosts approximates a small out-of-order core.
var DefaultCosts = vm.DefaultCosts

// DefaultCacheConfig models a modest last-level cache.
var DefaultCacheConfig = cache.DefaultConfig
