// Package memgaze is the public API of MemGaze-Go, a reproduction of
// "MemGaze: Rapid and Effective Load-Level Memory Trace Analysis"
// (IEEE CLUSTER 2022): low-overhead, load-level memory trace collection
// via sampled ptwrite-style tracing, plus multi-resolution analyses of
// data movement, reuse, footprint, and access patterns.
//
// # Analyzing a trace
//
// The entry point for analysis is NewAnalyzer: it takes a collected
// trace plus functional options, runs the requested analyses as one
// suite, and returns a single Report. The suite shares derived data —
// one stack-distance sweep feeds the miss-ratio curve, its bounds, the
// reuse-interval histogram, and the confidence pass together; the
// function diagnostics feed both the hot-function table and the ROI
// suggestion — and honours context cancellation in every long loop:
//
//	import "github.com/memgaze/memgaze-go"
//
//	res, err := memgaze.Run(workload, memgaze.DefaultConfig())
//	rep, err := memgaze.NewAnalyzer(res.Trace,
//		memgaze.WithBlockSize(64),
//		memgaze.WithAnalyses(memgaze.AnalyzeFunctions, memgaze.AnalyzeMRC),
//	).Run(ctx)
//	for _, d := range rep.FunctionDiags { ... }
//
// With no WithAnalyses option the analyzer runs the standard suite
// (DefaultAnalyses). The flat per-analysis functions below remain as
// deprecated wrappers over the engine; each names its replacement.
//
// See the examples/ directory for complete programs and DESIGN.md for
// the architecture.
package memgaze

import (
	"context"

	"github.com/memgaze/memgaze-go/internal/analysis"
	"github.com/memgaze/memgaze-go/internal/cache"
	"github.com/memgaze/memgaze-go/internal/core"
	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/diff"
	"github.com/memgaze/memgaze-go/internal/engine"
	"github.com/memgaze/memgaze-go/internal/heatmap"
	"github.com/memgaze/memgaze-go/internal/instrument"
	"github.com/memgaze/memgaze-go/internal/interval"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/server"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/vm"
	"github.com/memgaze/memgaze-go/internal/zoom"
)

// Pipeline configuration and drivers (Fig. 1 of the paper).
type (
	// Config selects the collection regime, sampling period, buffer
	// size, and instrumentation scope.
	Config = core.Config
	// Workload is an IR workload: a deterministic builder of a program
	// plus its address space.
	Workload = core.Workload
	// FuncWorkload adapts a build function to Workload.
	FuncWorkload = core.FuncWorkload
	// Result is the outcome of an IR pipeline run.
	Result = core.Result
	// App is a sites-based application workload.
	App = core.App
	// AppResult is the outcome of an application pipeline run.
	AppResult = core.AppResult
	// ParallelApp executes across several workers with per-CPU collectors.
	ParallelApp = core.ParallelApp
)

// DefaultConfig returns a typical application configuration: continuous
// sampling, 5M-load period, 8 KiB buffer, compression on.
func DefaultConfig() Config { return core.DefaultConfig() }

// Run executes the full IR pipeline: build, instrument, baseline run,
// traced run, decode.
func Run(w Workload, cfg Config) (*Result, error) { return core.Run(w, cfg) }

// RunApp executes the application pipeline on a sites-based workload.
func RunApp(app App, cfg Config) (*AppResult, error) { return core.RunApp(app, cfg) }

// RunAppParallel executes an application across workers with per-CPU
// trace collectors, merging the traces.
func RunAppParallel(app ParallelApp, cfg Config, workers int) (*AppResult, error) {
	return core.RunAppParallel(app, cfg, workers)
}

// Collection modes (§III-C, §VI-B).
const (
	// ModeContinuous is MemGaze with PT running continuously.
	ModeContinuous = pt.ModeContinuous
	// ModeSampledPT is MemGaze-opt: PT enabled only around samples.
	ModeSampledPT = pt.ModeSampledPT
	// ModeFull is bandwidth-limited full tracing with perf-style drops.
	ModeFull = pt.ModeFull
)

// Trace collection and building (Analysis/1 of Table II). A collector
// records a run's ptwrite stream; a TraceBuilder decodes it — samples
// fanned out across a worker pool, corruption resynced at the next PSB
// and accounted — so callers go straight from collector to Report:
//
//	col := memgaze.NewCollector(memgaze.CollectorConfig{Period: 10_000, BufBytes: 8 << 10})
//	... run the workload against col ...
//	tr, ds, err := memgaze.NewTraceBuilder(col, notes,
//		memgaze.WithBuildWorkers(4)).Build(ctx)
//	rep, err := memgaze.NewAnalyzer(tr).Run(ctx)
type (
	// Collector records the ptwrite packet stream of one run.
	Collector = pt.Collector
	// CollectorConfig parameterises a Collector.
	CollectorConfig = pt.Config
	// TraceBuilder converts a collector's raw output into a Trace on a
	// bounded worker pool. Create with NewTraceBuilder.
	TraceBuilder = pt.Builder
	// BuildOption configures a TraceBuilder (see the WithBuild...
	// constructors and WithFaultPolicy).
	BuildOption = pt.BuildOption
	// DecodeStats accounts every byte and event of one trace build,
	// including corruption losses. Result.Decode and AppResult.Decode
	// carry the stats of pipeline runs.
	DecodeStats = pt.DecodeStats
	// FaultPolicy selects how corrupted packet spans are handled.
	FaultPolicy = pt.FaultPolicy
	// CorruptionError is Build's error under FaultFail.
	CorruptionError = pt.CorruptionError
)

// Fault policies for WithFaultPolicy.
const (
	// FaultResync skips to the next PSB and accounts the loss (default).
	FaultResync = pt.FaultResync
	// FaultFail aborts the build on the first corrupted span.
	FaultFail = pt.FaultFail
)

// NewCollector creates a trace collector.
var NewCollector = pt.NewCollector

// NewTraceBuilder creates a trace builder over a collector and the
// module's annotations; execute it with Build(ctx).
func NewTraceBuilder(col *Collector, ann *Annotations, opts ...BuildOption) *TraceBuilder {
	return pt.NewBuilder(col, ann, opts...)
}

// BuildTrace is the one-call form: decode everything col recorded into
// a load-level trace. Equivalent to NewTraceBuilder(...).Build(ctx).
func BuildTrace(ctx context.Context, col *Collector, ann *Annotations, opts ...BuildOption) (*Trace, DecodeStats, error) {
	return pt.NewBuilder(col, ann, opts...).Build(ctx)
}

// TraceBuilder options.
var (
	// WithBuildWorkers bounds the samples decoded concurrently.
	WithBuildWorkers = pt.WithWorkers
	// WithFaultPolicy selects FaultResync (default) or FaultFail.
	WithFaultPolicy = pt.WithFaultPolicy
	// WithDecodeStatsSink registers a callback for the final DecodeStats.
	WithDecodeStatsSink = pt.WithStatsSink
	// WithBuildProgress registers a per-sample progress callback.
	WithBuildProgress = pt.WithProgress
)

// Trace data model (§III-C).
type (
	// Trace is a collected memory trace.
	Trace = trace.Trace
	// Sample is one recorded window of w accesses.
	Sample = trace.Sample
	// Record is one decoded load-level access.
	Record = trace.Record
)

// ReadTrace deserialises a trace written by Trace.Write.
var ReadTrace = trace.Read

// MergeTraces combines per-CPU traces into one.
var MergeTraces = trace.Merge

// Load classification (§III-B).
type (
	// Class is a load access class: Constant, Strided, or Irregular.
	Class = dataflow.Class
	// Annotations is the auxiliary annotation file emitted by the
	// instrumentor.
	Annotations = instrument.Annotations
)

// Load classes.
const (
	Constant  = dataflow.Constant
	Strided   = dataflow.Strided
	Irregular = dataflow.Irregular
)

// The analyzer engine (§IV–§V as one suite).
type (
	// Analyzer runs a set of analyses over one trace as a suite with
	// shared derived data and context cancellation. Create with
	// NewAnalyzer, execute with Run.
	Analyzer = engine.Analyzer
	// Option configures an Analyzer (see the With... constructors).
	Option = engine.Option
	// AnalyzerOptions is the resolved configuration of an Analyzer.
	AnalyzerOptions = engine.Options
	// Report aggregates every requested analysis output of one Run.
	Report = engine.Report
	// Analysis identifies one analysis of the suite (the Analyze...
	// constants).
	Analysis = engine.Analysis
)

// The analyses an Analyzer can run.
const (
	AnalyzeFunctions      = engine.AnalyzeFunctions
	AnalyzeLines          = engine.AnalyzeLines
	AnalyzeRegions        = engine.AnalyzeRegions
	AnalyzeWindows        = engine.AnalyzeWindows
	AnalyzeWorkingSet     = engine.AnalyzeWorkingSet
	AnalyzeReuseIntervals = engine.AnalyzeReuseIntervals
	AnalyzeMRC            = engine.AnalyzeMRC
	AnalyzeConfidence     = engine.AnalyzeConfidence
	AnalyzeIntervalTree   = engine.AnalyzeIntervalTree
	AnalyzeZoom           = engine.AnalyzeZoom
	AnalyzeHeatmap        = engine.AnalyzeHeatmap
	AnalyzeROI            = engine.AnalyzeROI
)

// NewAnalyzer creates an analysis engine over t. Options default to the
// standard suite at cache-line blocks; see DefaultAnalyses and the
// With... constructors.
func NewAnalyzer(t *Trace, opts ...Option) *Analyzer { return engine.New(t, opts...) }

// DefaultAnalyses is the suite an Analyzer runs when WithAnalyses is
// not given.
func DefaultAnalyses() []Analysis { return engine.DefaultAnalyses() }

// AllAnalyses lists every analysis the engine knows.
func AllAnalyses() []Analysis { return engine.AllAnalyses() }

// AnalysisNames lists every analysis's wire name, in Analysis order —
// the strings ParseAnalysis and the service's "analyses" fields accept.
func AnalysisNames() []string { return engine.AnalysisNames() }

// ParseAnalysis resolves an analysis wire name ("functions", "mrc", …)
// to its Analysis, reporting whether the name is known.
var ParseAnalysis = engine.ParseAnalysis

// Analyzer options.
var (
	// WithBlockSize sets the access-block granularity in bytes.
	WithBlockSize = engine.WithBlockSize
	// WithPageSize sets the working-set page size in bytes.
	WithPageSize = engine.WithPageSize
	// WithWindows sets the trace-window sizes.
	WithWindows = engine.WithWindows
	// WithParallelism bounds the number of analyses running concurrently.
	WithParallelism = engine.WithParallelism
	// WithSweepShards splits each analysis's trace walks into n sample
	// shards walked concurrently; output is byte-identical at every
	// shard count (0 = GOMAXPROCS, 1 = sequential).
	WithSweepShards = engine.WithSweepShards
	// WithAnalyses selects the analyses to run.
	WithAnalyses = engine.WithAnalyses
	// WithRegions sets the regions of AnalyzeRegions.
	WithRegions = engine.WithRegions
	// WithCapacities sets the miss-ratio curve capacities in blocks.
	WithCapacities = engine.WithCapacities
	// WithTimeIntervals sets the interval-tree breakdown granularity.
	WithTimeIntervals = engine.WithTimeIntervals
	// WithWorkingSetIntervals sets the working-set curve granularity.
	WithWorkingSetIntervals = engine.WithWorkingSetIntervals
	// WithZoomConfig configures the location zoom.
	WithZoomConfig = engine.WithZoomConfig
	// WithHeatmapRegion fixes the heatmap's address range.
	WithHeatmapRegion = engine.WithHeatmapRegion
	// WithHeatmapBins sets the heatmap geometry.
	WithHeatmapBins = engine.WithHeatmapBins
	// WithROICoverage sets the load share the suggested ROI must cover.
	WithROICoverage = engine.WithROICoverage
	// WithConfidenceConfig sets the undersampling thresholds.
	WithConfidenceConfig = engine.WithConfidenceConfig
)

// Analysis result types (§IV–§V).
type (
	// Diag is a footprint access diagnostic for a code window or region.
	Diag = analysis.Diag
	// Region is a named address range.
	Region = analysis.Region
	// WindowMetrics is one point of a trace-window histogram.
	WindowMetrics = analysis.WindowMetrics
	// WorkingSetPoint is one time interval of the working-set curve.
	WorkingSetPoint = analysis.WorkingSetPoint
	// StackDist computes spatio-temporal reuse distance and interval.
	StackDist = analysis.StackDist
	// Confidence reports estimate stability for a code window (§VI-A).
	Confidence = analysis.Confidence
	// ConfidenceConfig sets the undersampling flagging thresholds.
	ConfidenceConfig = analysis.ConfidenceConfig
	// ReuseProfile is a trace's reuse-distance distribution, reusable
	// across capacities.
	ReuseProfile = analysis.ReuseProfile
	// MRCPoint is one capacity of the miss-ratio curve.
	MRCPoint = analysis.MRCPoint
	// MRCBound brackets the miss ratio at one capacity.
	MRCBound = analysis.MRCBound
	// IntervalBucket is one bucket of the reuse-interval histogram.
	IntervalBucket = analysis.IntervalBucket
	// IntervalTree is the multi-resolution execution-time tree (Fig. 4).
	IntervalTree = interval.Tree
	// ZoomNode is a region of the location zoom tree (Fig. 5).
	ZoomNode = zoom.Node
	// ZoomConfig controls the recursive location zoom.
	ZoomConfig = zoom.Config
	// Heatmap is a location × time distribution (Fig. 8).
	Heatmap = heatmap.Heatmap
)

// NewStackDist creates a reuse-distance tracker at a block granularity.
var NewStackDist = analysis.NewStackDist

// PowerOfTwoWindows returns {2^lo..2^hi}.
var PowerOfTwoWindows = analysis.PowerOfTwoWindows

// MAPE compares two window histograms (Fig. 6's metric).
var MAPE = analysis.MAPE

// ZoomLeaves returns the final regions of a zoom tree.
var ZoomLeaves = zoom.Leaves

// BuildZoomOverTime runs the zoom per time interval (time × location).
var BuildZoomOverTime = zoom.BuildOverTime

// Deprecated flat analyses. Each wraps the engine with a single-analysis
// suite; prefer NewAnalyzer, which shares work across analyses and
// accepts a context.

// FunctionDiagnostics computes per-function footprint access diagnostics.
//
// Deprecated: use NewAnalyzer with AnalyzeFunctions; the result is
// Report.FunctionDiags.
func FunctionDiagnostics(t *Trace, blockSize uint64) []*Diag {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize),
		WithAnalyses(AnalyzeFunctions)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.FunctionDiags
}

// RegionDiagnostics computes diagnostics per memory region.
//
// Deprecated: use NewAnalyzer with AnalyzeRegions and WithRegions; the
// result is Report.RegionDiags.
func RegionDiagnostics(t *Trace, regions []Region, blockSize uint64) []*Diag {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize), WithRegions(regions),
		WithAnalyses(AnalyzeRegions)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.RegionDiags
}

// WindowHistogram computes footprint histograms over dynamic window sizes.
//
// Deprecated: use NewAnalyzer with AnalyzeWindows and WithWindows; the
// result is Report.Windows.
func WindowHistogram(t *Trace, windows []uint64) []WindowMetrics {
	rep, err := NewAnalyzer(t, WithWindows(windows),
		WithAnalyses(AnalyzeWindows)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.Windows
}

// WorkingSet computes the page-granularity working-set curve (§V-B).
//
// Deprecated: use NewAnalyzer with AnalyzeWorkingSet,
// WithWorkingSetIntervals, and WithPageSize; the result is
// Report.WorkingSet.
func WorkingSet(t *Trace, k int, pageSize uint64) []WorkingSetPoint {
	rep, err := NewAnalyzer(t, WithWorkingSetIntervals(k), WithPageSize(pageSize),
		WithAnalyses(AnalyzeWorkingSet)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.WorkingSet
}

// SuggestROI returns the hottest procedures covering a load share (§II).
//
// Deprecated: use NewAnalyzer with AnalyzeROI and WithROICoverage; the
// result is Report.ROI.
func SuggestROI(t *Trace, coverPct float64) []string {
	rep, err := NewAnalyzer(t, WithROICoverage(coverPct),
		WithAnalyses(AnalyzeROI)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.ROI
}

// SampleConfidence flags undersampled code windows (§VI-A).
//
// Deprecated: use NewAnalyzer with AnalyzeConfidence and
// WithConfidenceConfig; the result is Report.Confidence.
func SampleConfidence(t *Trace, cfg ConfidenceConfig) []Confidence {
	rep, err := NewAnalyzer(t, WithConfidenceConfig(cfg),
		WithAnalyses(AnalyzeConfidence)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.Confidence
}

// MissRatioCurve predicts LRU miss ratios from sampled reuse distances.
//
// Deprecated: use NewAnalyzer with AnalyzeMRC and WithCapacities; the
// result is Report.MRC (with bounds in Report.MRCBounds for free).
func MissRatioCurve(t *Trace, blockSize uint64, capacities []int) []MRCPoint {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize), WithCapacities(capacities),
		WithAnalyses(AnalyzeMRC)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.MRC
}

// MissRatioBounds brackets the miss ratio at one capacity.
//
// Deprecated: use NewAnalyzer with AnalyzeMRC; Report.MRCBounds holds
// the bracket at every configured capacity from one sweep.
func MissRatioBounds(t *Trace, blockSize uint64, capacity int) (lo, hi float64) {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize), WithCapacities([]int{capacity}),
		WithAnalyses(AnalyzeMRC)).Run(context.Background())
	if err != nil || len(rep.MRCBounds) == 0 {
		return 0, 0
	}
	return rep.MRCBounds[0].Lo, rep.MRCBounds[0].Hi
}

// ReuseIntervalHistogram computes the log2 reuse-interval histogram
// with its R1/R3 regime split (§IV-A).
//
// Deprecated: use NewAnalyzer with AnalyzeReuseIntervals; the result is
// Report.ReuseIntervals.
func ReuseIntervalHistogram(t *Trace) []IntervalBucket {
	rep, err := NewAnalyzer(t,
		WithAnalyses(AnalyzeReuseIntervals)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.ReuseIntervals
}

// BuildIntervalTree constructs the execution interval tree.
//
// Deprecated: use NewAnalyzer with AnalyzeIntervalTree; the result is
// Report.IntervalTree (with the per-interval breakdown in
// Report.IntervalDiags).
func BuildIntervalTree(t *Trace, blockSize uint64) *IntervalTree {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize), WithTimeIntervals(0),
		WithAnalyses(AnalyzeIntervalTree)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.IntervalTree
}

// BuildZoomTree runs the recursive location zoom.
//
// Deprecated: use NewAnalyzer with AnalyzeZoom and WithZoomConfig; the
// result is Report.ZoomRoot, with leaves and per-leaf block counts in
// Report.ZoomLeaves and Report.ZoomLeafBlocks.
func BuildZoomTree(t *Trace, cfg ZoomConfig) *ZoomNode {
	rep, err := NewAnalyzer(t, WithZoomConfig(cfg),
		WithAnalyses(AnalyzeZoom)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.ZoomRoot
}

// BuildHeatmap computes a location × time heatmap over [lo, hi).
//
// Deprecated: use NewAnalyzer with AnalyzeHeatmap, WithHeatmapRegion,
// and WithHeatmapBins; the result is Report.Heatmap. Passing lo == hi
// == 0 selects the hottest zoom leaf.
func BuildHeatmap(t *Trace, lo, hi uint64, rows, cols int, blockSize uint64) *Heatmap {
	rep, err := NewAnalyzer(t, WithBlockSize(blockSize),
		WithHeatmapRegion(lo, hi), WithHeatmapBins(rows, cols),
		WithAnalyses(AnalyzeHeatmap)).Run(context.Background())
	if err != nil {
		return nil
	}
	return rep.Heatmap
}

// Cross-trace comparison. Every case study of the paper reads two
// traces side by side; Compare (over Reports) and CompareTraces (over
// traces, running both engine suites concurrently) serve that directly:
//
//	d, err := memgaze.CompareTraces(ctx, trA, trB, memgaze.WithDiffTopK(10))
//	for _, f := range d.Functions { ... } // per-function shifts, A − B
//
// Deltas are A − B throughout; see DiffReport's sections for the MRC,
// footprint-growth, symbol, and address-region comparisons.
type (
	// DiffReport is the full comparison of two Reports.
	DiffReport = diff.DiffReport
	// MRCDelta is one aligned capacity of two miss-ratio curves, with
	// confidence bounds propagated through the subtraction.
	MRCDelta = diff.MRCDelta
	// GrowthPoint is one normalized-time point of the footprint-growth
	// comparison.
	GrowthPoint = diff.GrowthPoint
	// SymbolShift is one function's or line's diagnostic shift.
	SymbolShift = diff.SymbolShift
	// RegionShift is one aligned pair of zoom-tree leaves.
	RegionShift = diff.RegionShift
	// DiffOption configures Compare and CompareTraces.
	DiffOption = diff.Option
)

// Compare diffs two already-built Reports; deltas are A − B.
func Compare(a, b *Report, opts ...DiffOption) *DiffReport { return diff.Diff(a, b, opts...) }

// CompareTraces analyses both traces with identical options (the two
// engine suites run concurrently) and diffs the Reports.
func CompareTraces(ctx context.Context, a, b *Trace, opts ...DiffOption) (*DiffReport, error) {
	return diff.DiffTraces(ctx, a, b, opts...)
}

// DiffAnalyses is the engine suite CompareTraces runs by default.
func DiffAnalyses() []Analysis { return diff.DiffAnalyses() }

// Diff options.
var (
	// WithDiffTopK truncates the symbol and region sections to the k
	// largest shifts (0 = unlimited).
	WithDiffTopK = diff.WithTopK
	// WithDiffEngineOptions sets the engine options CompareTraces applies
	// identically to both runs.
	WithDiffEngineOptions = diff.WithEngineOptions
)

// The memgazed analysis service (cmd/memgazed). A Server holds uploaded
// traces in a sharded, byte-budgeted LRU store and serves engine
// analyses over HTTP with request coalescing, a result cache, and
// Prometheus metrics at /metrics:
//
//	srv, err := memgaze.NewServer(memgaze.ServerConfig{Workers: 8, DataDir: "/var/lib/memgazed"})
//	if err != nil { ... }
//	defer srv.Close()
//	http.ListenAndServe(":8080", srv)
//
// For graceful shutdown, drain the HTTP listener first
// (http.Server.Shutdown), then Close the Server.
type (
	// Server is the memgazed HTTP trace-analysis service; it implements
	// http.Handler. Create with NewServer.
	Server = server.Server
	// ServerConfig parameterises a Server; zero fields take defaults.
	ServerConfig = server.Config
	// AnalyzeRequest is the JSON body of POST /v1/traces/{id}/analyze.
	AnalyzeRequest = server.AnalyzeRequest
	// DiffRequest is the JSON body of POST /v1/diff.
	DiffRequest = server.DiffRequest
	// TraceInfo is the service's trace-metadata answer.
	TraceInfo = server.TraceInfo
	// TraceList is the paged answer of GET /v1/traces.
	TraceList = server.TraceList
	// ErrorEnvelope is the structured error body of every /v1 error
	// answer: {"error": {"code", "message"}} with a stable code.
	ErrorEnvelope = server.ErrorEnvelope
	// PTCapture is the portable form of a collector's raw output — what
	// a collection host POSTs to /v1/traces as ContentTypePT.
	PTCapture = pt.Capture
)

// Content types of memgazed trace uploads.
const (
	// ContentTypeTrace marks a serialised trace body (Trace.Encode).
	ContentTypeTrace = server.ContentTypeTrace
	// ContentTypePT marks a raw PT capture body (PTCapture.Write).
	ContentTypePT = server.ContentTypePT
)

// NewServer creates a memgazed service and starts its shared analysis
// worker pool. With cfg.DataDir set it opens (or recovers) the durable
// on-disk segment store there, so the trace corpus survives restarts;
// an unrecoverable data directory is the only error.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ReadPTCapture deserialises a capture written by PTCapture.Write.
var ReadPTCapture = pt.ReadCapture

// Machine model.
type (
	// CostModel assigns cycle costs to instruction classes.
	CostModel = vm.CostModel
	// CacheConfig sizes the optional cache timing model.
	CacheConfig = cache.Config
)

// DefaultCosts approximates a small out-of-order core.
var DefaultCosts = vm.DefaultCosts

// DefaultCacheConfig models a modest last-level cache.
var DefaultCacheConfig = cache.DefaultConfig
