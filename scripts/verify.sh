#!/bin/sh
# Repo verification gate: build, vet, formatting, lint (when installed),
# full tests (shuffled), the concurrent packages under the race
# detector, fuzz smoke, and a live memgazed smoke test. Run from the
# repo root.
#
# Every stage fails with a distinct "verify: FAILED stage: <name>"
# message so CI logs point at the broken stage without scrolling.
#
#   VERIFY_QUICK=1 scripts/verify.sh   # skip fuzz + daemon smoke
#   VERIFY_BENCH=1 scripts/verify.sh   # also run the benchmark gate
#                                      # against the latest BENCH_N.json
set -eu

stage=""
begin() {
    stage="$1"
    echo "== $stage =="
}
die() {
    echo "verify: FAILED stage: $stage" >&2
    exit 1
}
run() {
    begin "$1"
    shift
    "$@" || die
}

run "go build" go build ./...
run "go vet" go vet ./...

begin "gofmt"
unformatted=$(gofmt -l .) || die
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    die
fi

# staticcheck is optional locally (not part of the base toolchain) but
# CI installs it, so the gate tightens automatically on runners.
begin "staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./... || die
else
    echo "staticcheck not installed; skipping (CI runs it)"
fi

run "go test (shuffled)" go test -count=1 -shuffle=on ./...
run "go test -race (trace)" go test -count=1 -race ./internal/trace/...
run "go test -race (engine)" go test -count=1 -race ./internal/engine/...
run "go test -race (analysis)" go test -count=1 -race ./internal/analysis/...
run "go test -race (pt)" go test -count=1 -race ./internal/pt/...
run "go test -race (server)" go test -count=1 -race ./internal/server/...
run "go test -race (cluster)" go test -count=1 -race ./internal/cluster/...
run "go test -race (cache)" go test -count=1 -race ./internal/cache/...
run "go test -race (diff)" go test -count=1 -race ./internal/diff/...
run "go test -race (storage)" go test -count=1 -race ./internal/storage/...

if [ "${VERIFY_QUICK:-0}" = "1" ]; then
    echo "VERIFY_QUICK=1: skipping fuzz smoke and memgazed smoke"
    echo "verify OK (quick)"
    exit 0
fi

run "fuzz smoke (FuzzDecode pt)" \
    go test -run '^FuzzDecode$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/pt/
run "fuzz smoke (FuzzDecode trace)" \
    go test -run '^FuzzDecode$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/trace/
run "fuzz smoke (FuzzStreamDecode)" \
    go test -run '^FuzzStreamDecode$' -fuzz '^FuzzStreamDecode$' -fuzztime 10s ./internal/pt/

begin "memgazed smoke"
# Boot the daemon on an ephemeral port, hit /v1/healthz and /metrics,
# then SIGTERM it and require a clean drain (exit 0).
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/memgazed" ./cmd/memgazed || die
"$smokedir/memgazed" -addr 127.0.0.1:0 >"$smokedir/log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^memgazed: listening on //p' "$smokedir/log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$smokedir/log" >&2; die; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "memgazed never reported an address" >&2; cat "$smokedir/log" >&2; die; }
# Buffer responses before grep: -q closing the pipe early would make
# curl report a write failure.
curl -fsS "http://$addr/v1/healthz" >"$smokedir/healthz" || die
grep -q '"ok"' "$smokedir/healthz" || die
curl -fsS "http://$addr/metrics" >"$smokedir/metrics" || die
grep -q '^memgazed_requests_total' "$smokedir/metrics" || die
kill -TERM "$pid"
wait "$pid" || { echo "memgazed did not drain cleanly" >&2; cat "$smokedir/log" >&2; die; }
grep -q 'drained, exiting' "$smokedir/log" || die

# Opt-in benchmark regression gate: CI runs this in its own job against
# the newest committed baseline (resolved, never hardcoded).
if [ "${VERIFY_BENCH:-0}" = "1" ]; then
    begin "bench gate"
    baseline=$(scripts/bench-baseline.sh) || die
    echo "baseline: $baseline"
    go run ./cmd/memgaze-bench -quick -gate "$baseline" -gate-threshold 20 || die
fi

echo "verify OK"
