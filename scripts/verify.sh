#!/bin/sh
# Repo verification gate: build, vet, formatting, full tests (shuffled),
# the concurrent packages under the race detector, and a live memgazed
# smoke test. Run from the repo root.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test (shuffled) =="
go test -shuffle=on ./...

echo "== go test -race (engine) =="
go test -race ./internal/engine/...

echo "== go test -race (pt) =="
go test -race ./internal/pt/...

echo "== go test -race (server) =="
go test -race ./internal/server/...

echo "== fuzz smoke (FuzzDecode) =="
go test -run '^FuzzDecode$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/pt/

echo "== memgazed smoke =="
# Boot the daemon on an ephemeral port, hit /v1/healthz and /metrics,
# then SIGTERM it and require a clean drain (exit 0).
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/memgazed" ./cmd/memgazed
"$smokedir/memgazed" -addr 127.0.0.1:0 >"$smokedir/log" 2>&1 &
pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^memgazed: listening on //p' "$smokedir/log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { cat "$smokedir/log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "memgazed never reported an address" >&2; cat "$smokedir/log" >&2; exit 1; }
# Buffer responses before grep: -q closing the pipe early would make
# curl report a write failure.
curl -fsS "http://$addr/v1/healthz" >"$smokedir/healthz"
grep -q '"ok"' "$smokedir/healthz"
curl -fsS "http://$addr/metrics" >"$smokedir/metrics"
grep -q '^memgazed_requests_total' "$smokedir/metrics"
kill -TERM "$pid"
wait "$pid" || { echo "memgazed did not drain cleanly" >&2; cat "$smokedir/log" >&2; exit 1; }
grep -q 'drained, exiting' "$smokedir/log"

echo "verify OK"
