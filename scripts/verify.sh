#!/bin/sh
# Repo verification gate: build, vet, formatting, full tests, and the
# analyzer engine under the race detector. Run from the repo root.
set -eu

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test =="
go test ./...

echo "== go test -race (engine) =="
go test -race ./internal/engine/...

echo "== go test -race (pt) =="
go test -race ./internal/pt/...

echo "== fuzz smoke (FuzzDecode) =="
go test -run '^FuzzDecode$' -fuzz '^FuzzDecode$' -fuzztime 10s ./internal/pt/

echo "verify OK"
