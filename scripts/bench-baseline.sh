#!/bin/sh
# Print the path of the newest committed benchmark baseline: the
# BENCH_<N>.json with the highest N in the repo root. The bench gate
# (CI and VERIFY_BENCH=1 scripts/verify.sh) resolves its baseline
# through this script so rolling to a new BENCH_N.json can never
# silently desync from a hardcoded filename. Run from the repo root.
set -eu

best=""
bestn=-1
for f in BENCH_*.json; do
    [ -e "$f" ] || break # glob matched nothing
    n=${f#BENCH_}
    n=${n%.json}
    case $n in
        *[!0-9]*) continue ;; # BENCH_new.json and friends are not baselines
    esac
    if [ "$n" -gt "$bestn" ]; then
        bestn=$n
        best=$f
    fi
done

if [ -z "$best" ]; then
    echo "bench-baseline: no BENCH_<N>.json baseline in $(pwd)" >&2
    exit 1
fi
echo "$best"
