module github.com/memgaze/memgaze-go

go 1.23
