package memgaze_test

import (
	"testing"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/workloads/micro"
	"github.com/memgaze/memgaze-go/internal/zoom"
)

// TestPublicFacade exercises the re-exported API end to end the way a
// downstream user would.
func TestPublicFacade(t *testing.T) {
	spec := micro.Spec{Pattern: micro.Str{Step: 1, Accesses: 1024}, Reps: 10, Opt: micro.O3}
	cfg := memgaze.DefaultConfig()
	cfg.Period = 5_000
	cfg.BufBytes = 16 << 10
	res, err := memgaze.Run(memgaze.FuncWorkload{WName: spec.Name(), BuildFn: spec.Build}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumRecords() == 0 {
		t.Fatal("no records")
	}
	diags := memgaze.FunctionDiagnostics(res.Trace, 64)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if d.Name == "str1_0" && d.FstrPct < 99 {
			t.Errorf("strided leaf Fstr%% = %.1f", d.FstrPct)
		}
	}
	hist := memgaze.WindowHistogram(res.Trace, memgaze.PowerOfTwoWindows(4, 10))
	if len(hist) == 0 || hist[0].N == 0 {
		t.Error("empty histogram")
	}
	root := memgaze.BuildZoomTree(res.Trace, zoom.DefaultConfig())
	if len(memgaze.ZoomLeaves(root)) == 0 {
		t.Error("zoom found no regions")
	}
	tree := memgaze.BuildIntervalTree(res.Trace, 64)
	if tree.Root == nil || tree.Root.Diag.A != res.Trace.NumRecords() {
		t.Error("interval tree root inconsistent")
	}

	// Load classes and reuse distance through the facade.
	sd := memgaze.NewStackDist(64)
	sd.Access(0)
	sd.Access(64)
	if d, _ := sd.Access(0); d != 1 {
		t.Errorf("facade stack distance = %d", d)
	}
	if memgaze.Constant.String() != "constant" || memgaze.Strided.String() != "strided" ||
		memgaze.Irregular.String() != "irregular" {
		t.Error("class names wrong through facade")
	}

	// Derived analyses through the facade.
	if roi := memgaze.SuggestROI(res.Trace, 90); len(roi) == 0 {
		t.Error("no ROI suggested")
	}
	if ws := memgaze.WorkingSet(res.Trace, 4, 4096); len(ws) == 0 {
		t.Error("no working-set points")
	}
	mrc := memgaze.MissRatioCurve(res.Trace, 64, []int{64, 4096})
	if len(mrc) != 2 || mrc[0].MissRatio < mrc[1].MissRatio {
		t.Errorf("facade MRC = %+v", mrc)
	}

	// Analysis-name parsing through the facade.
	names := memgaze.AnalysisNames()
	if len(names) != len(memgaze.AllAnalyses()) {
		t.Errorf("%d analysis names for %d analyses", len(names), len(memgaze.AllAnalyses()))
	}
	if a, ok := memgaze.ParseAnalysis("mrc"); !ok || a != memgaze.AnalyzeMRC {
		t.Errorf("ParseAnalysis(mrc) = %v, %v", a, ok)
	}
	if _, ok := memgaze.ParseAnalysis("bogus"); ok {
		t.Error("ParseAnalysis accepted an unknown name")
	}

	// Cross-trace comparison through the facade: a self-diff is zero.
	d, err := memgaze.CompareTraces(t.Context(), res.Trace, res.Trace, memgaze.WithDiffTopK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Functions) == 0 {
		t.Fatal("self-diff has no function shifts")
	}
	for _, f := range d.Functions {
		if f.DLoads != 0 || f.OnlyIn != "" {
			t.Errorf("self-diff function %q: %+v", f.Name, f)
		}
	}
	for _, m := range d.MRC {
		if m.Delta != 0 || m.Significant {
			t.Errorf("self-diff MRC at %d blocks: %+v", m.CacheBlocks, m)
		}
	}
}
