// Package memgaze's benchmark harness regenerates every table and
// figure of the paper's evaluation (one Benchmark per experiment; see
// DESIGN.md's per-experiment index). Benchmarks run the experiment once
// per iteration at Quick sizes and report the experiment's headline
// numbers as custom metrics, so `go test -bench=. -benchmem` doubles as
// the reproduction harness. For full-scale runs use cmd/memgaze-bench.
package memgaze_test

import (
	"testing"

	"github.com/memgaze/memgaze-go/internal/experiments"
)

func sizes() experiments.Sizes { return experiments.Quick() }

func BenchmarkFig6_Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var worstTrace, worstCode float64
		for _, r := range res.Rows {
			if r.TraceF > worstTrace {
				worstTrace = r.TraceF
			}
			if r.CodeF > worstCode {
				worstCode = r.CodeF
			}
		}
		b.ReportMetric(worstTrace, "worst-trace-MAPE-%")
		b.ReportMetric(worstCode, "worst-code-err-%")
	}
}

func BenchmarkFig7_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var maxOv, maxOpt float64
		for _, r := range res.Rows {
			if r.PhaseHot > maxOv {
				maxOv = r.PhaseHot
			}
			if r.OptHot > maxOpt {
				maxOpt = r.OptHot
			}
		}
		b.ReportMetric(100*maxOv, "max-hot-overhead-%")
		b.ReportMetric(100*maxOpt, "max-opt-overhead-%")
	}
}

func BenchmarkTable2_Toolchain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var instrUS, analysisUS float64
		for _, r := range res.Rows {
			instrUS += float64(r.Instrument.Microseconds())
			analysisUS += float64(r.Analysis1.Microseconds() + r.Analysis2.Microseconds())
		}
		b.ReportMetric(instrUS, "instrument-us")
		b.ReportMetric(analysisUS, "analysis-us")
	}
}

func BenchmarkTable3_Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var sumRatio float64
		var n int
		for _, r := range res.Rows {
			if _, all, _ := r.Ratios(); all > 0 {
				sumRatio += all
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(sumRatio/float64(n), "mean-sampled/all-%")
		}
	}
}

func BenchmarkTable4_MiniviteTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(sizes())
		if err != nil {
			b.Fatal(err)
		}
		v1 := float64(res.Runtimes["v1"].Cycles)
		v3 := float64(res.Runtimes["v3"].Cycles)
		if v3 > 0 {
			b.ReportMetric(v1/v3, "v1/v3-speedup")
		}
	}
}

func BenchmarkTable5_MiniviteLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(sizes())
		if err != nil {
			b.Fatal(err)
		}
		for _, rd := range res.Regions {
			if rd.Region == "map (hash table)" && rd.Variant == "v1" {
				b.ReportMetric(rd.Diag.D, "v1-map-D")
			}
		}
	}
}

func BenchmarkTable6_DarknetTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table6(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var fa, fr float64
		for _, fd := range res.Funcs {
			if fd.Func == "gemm" {
				if fd.Variant == "AlexNet" {
					fa = fd.Diag.F
				} else {
					fr = fd.Diag.F
				}
			}
		}
		if fa > 0 {
			b.ReportMetric(fr/fa, "resnet/alexnet-F")
		}
	}
}

func BenchmarkTable7_DarknetLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table7(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Regions)), "regions")
	}
}

func BenchmarkTable8_DarknetIntervals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table8(sizes())
		if err != nil {
			b.Fatal(err)
		}
		// D rises over time as gemm's inner dimension shrinks: report the
		// late/early reuse-distance ratio for AlexNet.
		var first, last float64
		for _, r := range res.Rows {
			if r.Model == "AlexNet" {
				if r.Interval == 0 {
					first = r.Diag.D
				}
				last = r.Diag.D
			}
		}
		if first > 0 {
			b.ReportMetric(last/first, "alexnet-D-late/early")
		}
	}
}

func BenchmarkTable9_GapLocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table9(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var prD, spmvD float64
		for _, rd := range res.Regions {
			switch rd.Variant {
			case "pr":
				prD = rd.Diag.D
			case "pr-spmv":
				spmvD = rd.Diag.D
			}
		}
		if prD > 0 {
			b.ReportMetric(spmvD/prD, "spmv/pr-D")
		}
	}
}

func BenchmarkFig8_Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Dist["cc"].OutlierFrac, "cc-D-outliers-%")
	}
}

func BenchmarkFig9_GapIntervals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "algorithms")
	}
}

func BenchmarkAblation_Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCompression(sizes())
		if err != nil {
			b.Fatal(err)
		}
		var o0 float64
		for _, r := range res.Rows {
			if r.SavingsFactor > o0 {
				o0 = r.SavingsFactor
			}
		}
		b.ReportMetric(o0, "best-savings-x")
	}
}

func BenchmarkAblation_Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSweep(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "points")
	}
}

func BenchmarkAblation_ZoomContiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationZoomContiguity(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ContiguousD, "contiguous-D")
		b.ReportMetric(res.HotBlocksD, "hotblocks-D")
	}
}

func BenchmarkAblation_BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationBlockSize(sizes())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "benchmarks")
	}
}

func BenchmarkAblation_ParallelTracing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationParallel(sizes())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		first := res.Rows[0]
		if last.Cycles > 0 {
			b.ReportMetric(float64(first.Cycles)/float64(last.Cycles), "speedup-4w")
		}
		b.ReportMetric(last.MAPEF, "MAPE-vs-serial-%")
	}
}

func BenchmarkAblation_GemmTiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationGemmTiling(sizes())
		if err != nil {
			b.Fatal(err)
		}
		base := float64(res.Rows[0].Cycles)
		best := base
		for _, r := range res.Rows[1:] {
			if float64(r.Cycles) < best {
				best = float64(r.Cycles)
			}
		}
		if best > 0 {
			b.ReportMetric(base/best, "best-tiling-speedup")
		}
	}
}

func BenchmarkAblation_MissRatioCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMRC(sizes())
		if err != nil {
			b.Fatal(err)
		}
		// Report the small-cache agreement (the resolved region).
		if len(res.Rows) > 0 && res.Rows[0].Simulated > 0 {
			b.ReportMetric(res.Rows[0].Predicted/res.Rows[0].Simulated, "pred/sim-4KiB")
		}
	}
}
