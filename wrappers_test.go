package memgaze_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/trace"
)

// wrapperTrace synthesizes a deterministic sampled trace without
// running a workload, so the equivalence check below is fast and exact.
func wrapperTrace() *memgaze.Trace {
	rng := rand.New(rand.NewSource(11))
	procs := []string{"kernel", "init", "reduce"}
	tr := &trace.Trace{Module: "wrap", Period: 8_000, TotalLoads: 32 * 8_000}
	for s := 0; s < 32; s++ {
		smp := &trace.Sample{Seq: s, TriggerLoads: uint64(s+1) * 8_000}
		for i := 0; i < 256; i++ {
			addr := 0x1000_0000 + uint64(rng.Intn(1<<14))*8
			if rng.Intn(5) == 0 {
				addr = 0x7000_0000 + uint64(rng.Intn(1<<18))*64
			}
			rec := trace.Record{
				TS:    uint64(s*256 + i),
				Addr:  addr,
				Class: dataflow.Class(rng.Intn(3)),
				Proc:  procs[rng.Intn(len(procs))],
				Line:  int32(rng.Intn(20)),
			}
			if rng.Intn(10) == 0 {
				rec.Implied = uint32(1 + rng.Intn(2))
			}
			smp.Records = append(smp.Records, rec)
		}
		tr.AppendSample(smp)
	}
	return tr
}

func dump(v any) string {
	if ds, ok := v.([]*memgaze.Diag); ok {
		var b strings.Builder
		for _, d := range ds {
			fmt.Fprintf(&b, "%+v\n", *d)
		}
		return b.String()
	}
	return fmt.Sprintf("%+v", v)
}

// TestDeprecatedWrappersMatchAnalyzer pins every deprecated flat
// function to the Analyzer: the wrappers route through the engine, so
// their output must be byte-identical to the corresponding Report
// field of an explicit NewAnalyzer run.
func TestDeprecatedWrappersMatchAnalyzer(t *testing.T) {
	tr := wrapperTrace()
	caps := []int{64, 512, 4096}
	regions := []memgaze.Region{
		{Name: "dense", Lo: 0x1000_0000, Hi: 0x1000_0000 + 1<<17},
		{Name: "wide", Lo: 0x7000_0000, Hi: 0x7000_0000 + 1<<24},
	}
	windows := memgaze.PowerOfTwoWindows(4, 12)

	rep, err := memgaze.NewAnalyzer(tr,
		memgaze.WithRegions(regions),
		memgaze.WithCapacities(caps),
		memgaze.WithWindows(windows),
		memgaze.WithAnalyses(memgaze.AllAnalyses()...),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, got, want any) {
		t.Helper()
		if g, w := dump(got), dump(want); g != w {
			t.Errorf("%s: wrapper diverges from Analyzer\n got: %.240s\nwant: %.240s", name, g, w)
		}
	}

	check("FunctionDiagnostics", memgaze.FunctionDiagnostics(tr, 64), rep.FunctionDiags)
	check("RegionDiagnostics", memgaze.RegionDiagnostics(tr, regions, 64), rep.RegionDiags)
	check("WindowHistogram", memgaze.WindowHistogram(tr, windows), rep.Windows)
	check("WorkingSet", memgaze.WorkingSet(tr, 8, 4096), rep.WorkingSet)
	check("SuggestROI", memgaze.SuggestROI(tr, 90), rep.ROI)
	check("SampleConfidence", memgaze.SampleConfidence(tr, memgaze.ConfidenceConfig{}), rep.Confidence)
	check("MissRatioCurve", memgaze.MissRatioCurve(tr, 64, caps), rep.MRC)
	check("ReuseIntervalHistogram", memgaze.ReuseIntervalHistogram(tr), rep.ReuseIntervals)

	for i, c := range caps {
		lo, hi := memgaze.MissRatioBounds(tr, 64, c)
		if b := rep.MRCBounds[i]; lo != b.Lo || hi != b.Hi {
			t.Errorf("MissRatioBounds(%d) = %v,%v; Report has %v,%v", c, lo, hi, b.Lo, b.Hi)
		}
	}

	itree := memgaze.BuildIntervalTree(tr, 64)
	check("BuildIntervalTree root", *itree.Root.Diag, *rep.IntervalTree.Root.Diag)
	if len(itree.Leaves) != len(rep.IntervalTree.Leaves) {
		t.Errorf("interval tree leaves: %d vs %d", len(itree.Leaves), len(rep.IntervalTree.Leaves))
	}

	zroot := memgaze.BuildZoomTree(tr, memgaze.ZoomConfig{Block: 64})
	gotLeaves := memgaze.ZoomLeaves(zroot)
	if len(gotLeaves) != len(rep.ZoomLeaves) {
		t.Fatalf("zoom leaves: %d vs %d", len(gotLeaves), len(rep.ZoomLeaves))
	}
	for i, lf := range gotLeaves {
		check(fmt.Sprintf("ZoomLeaf %d", i), *lf.Diag, *rep.ZoomLeaves[i].Diag)
	}

	h := memgaze.BuildHeatmap(tr, rep.Heatmap.Lo, rep.Heatmap.Hi, 20, 56, 64)
	check("BuildHeatmap", h.Access, rep.Heatmap.Access)
}
