// Command memgaze-bench regenerates the MemGaze paper's evaluation: every
// table and figure of §VI and §VII plus the ablations DESIGN.md calls
// out, printed in the paper's layout.
//
//	memgaze-bench                  # run everything at full sizes
//	memgaze-bench -quick           # test sizes (seconds)
//	memgaze-bench -run fig6,table4 # a subset
//
// With -json or -gate the command instead runs the regression-gated
// benchmark suite: -json writes machine-readable results (the committed
// BENCH_9.json baseline format) and -gate compares against a baseline,
// exiting nonzero if a gated benchmark regressed beyond -gate-threshold
// percent.
//
//	memgaze-bench -quick -json BENCH_new.json -gate BENCH_9.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/memgaze/memgaze-go/internal/experiments"
)

type experiment struct {
	name string
	run  func(experiments.Sizes) (string, error)
}

func text[T any](f func(experiments.Sizes) (T, error), get func(T) string) func(experiments.Sizes) (string, error) {
	return func(s experiments.Sizes) (string, error) {
		r, err := f(s)
		if err != nil {
			return "", err
		}
		return get(r), nil
	}
}

func main() {
	quick := flag.Bool("quick", false, "use test-scale sizes")
	outPath := flag.String("o", "", "also write the report to this file")
	run := flag.String("run", "all", "comma-separated experiments (fig6,fig7,table2,table3,table4,table5,table6,table7,table8,table9,fig8,fig9,ablations,extras)")
	jsonPath := flag.String("json", "", "run the gated benchmark suite and write JSON results to this path")
	gatePath := flag.String("gate", "", "baseline JSON to gate against; exit nonzero on regression")
	threshold := flag.Float64("gate-threshold", 20, "allowed regression percent vs the -gate baseline")
	flag.Parse()

	sizes := experiments.Full()
	if *quick {
		sizes = experiments.Quick()
	}

	if *jsonPath != "" || *gatePath != "" {
		if err := runBenchGate(sizes, *jsonPath, *gatePath, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	exps := []experiment{
		{"fig6", text(experiments.Fig6, func(r *experiments.Fig6Result) string { return r.Text })},
		{"fig7", text(experiments.Fig7, func(r *experiments.Fig7Result) string { return r.Text })},
		{"table2", text(experiments.Table2, func(r *experiments.Table2Result) string { return r.Text })},
		{"table3", text(experiments.Table3, func(r *experiments.Table3Result) string { return r.Text })},
		{"table4", text(experiments.Table4, func(r *experiments.CaseStudyResult) string { return r.Text })},
		{"table5", text(experiments.Table5, func(r *experiments.CaseStudyResult) string { return r.Text })},
		{"table6", text(experiments.Table6, func(r *experiments.CaseStudyResult) string { return r.Text })},
		{"table7", text(experiments.Table7, func(r *experiments.CaseStudyResult) string { return r.Text })},
		{"table8", text(experiments.Table8, func(r *experiments.Table8Result) string { return r.Text })},
		{"table9", text(experiments.Table9, func(r *experiments.CaseStudyResult) string { return r.Text })},
		{"fig8", text(experiments.Fig8, func(r *experiments.Fig8Result) string { return r.Text })},
		{"fig9", text(experiments.Fig9, func(r *experiments.Fig9Result) string { return r.Text })},
		{"ablations", runAblations},
		{"extras", text(experiments.Extras, func(r *experiments.ExtrasResult) string { return r.Text })},
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(n)] = true
	}
	all := want["all"]

	var report strings.Builder
	failed := false
	for _, e := range exps {
		if !all && !want[e.name] {
			continue
		}
		t0 := time.Now()
		out, err := e.run(sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		section := fmt.Sprintf("==== %s (%.1fs) ====\n%s\n", e.name, time.Since(t0).Seconds(), out)
		fmt.Print(section)
		report.WriteString(section)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *outPath, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runBenchGate runs the gated benchmark suite, optionally writes the
// JSON results, and optionally compares gated metrics against a
// committed baseline (matching by name; metrics present only on one
// side are reported but never gate).
func runBenchGate(sizes experiments.Sizes, jsonPath, gatePath string, threshold float64) error {
	res, err := experiments.Bench(sizes)
	if err != nil {
		return err
	}
	fmt.Print(res.Text)

	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("results written to %s\n", jsonPath)
	}

	if gatePath == "" {
		return nil
	}
	raw, err := os.ReadFile(gatePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base experiments.BenchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", gatePath, err)
	}
	baseline := map[string]experiments.BenchMetric{}
	for _, m := range base.Gate {
		baseline[m.Name] = m
	}
	regressed := false
	check := func(name, unit string, cur, old int64) {
		pct := 100 * (float64(cur) - float64(old)) / float64(old)
		verdict := "ok"
		if pct > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Printf("gate %-14s %12d %-9s baseline %12d  %+6.1f%%  %s\n",
			name, cur, unit, old, pct, verdict)
	}
	for _, m := range res.Gate {
		old, ok := baseline[m.Name]
		if !ok || old.NsPerOp <= 0 {
			fmt.Printf("gate %-14s %12d ns/op     (no baseline, not gated)\n", m.Name, m.NsPerOp)
			continue
		}
		check(m.Name, "ns/op", m.NsPerOp, old.NsPerOp)
		// Allocation metrics gate only when both sides recorded them,
		// so pre-PR-10 baselines still parse and gate latency alone.
		if old.AllocsPerOp > 0 && m.AllocsPerOp > 0 {
			check(m.Name, "allocs/op", m.AllocsPerOp, old.AllocsPerOp)
		}
		if old.BytesPerOp > 0 && m.BytesPerOp > 0 {
			check(m.Name, "B/op", m.BytesPerOp, old.BytesPerOp)
		}
	}
	if regressed {
		return fmt.Errorf("gated benchmarks regressed beyond %.0f%% of %s", threshold, gatePath)
	}
	return nil
}

func runAblations(s experiments.Sizes) (string, error) {
	var b strings.Builder
	comp, err := experiments.AblationCompression(s)
	if err != nil {
		return "", err
	}
	b.WriteString(comp.Text)
	b.WriteByte('\n')
	sweep, err := experiments.AblationSweep(s)
	if err != nil {
		return "", err
	}
	b.WriteString(sweep.Text)
	b.WriteByte('\n')
	zc, err := experiments.AblationZoomContiguity(s)
	if err != nil {
		return "", err
	}
	b.WriteString(zc.Text)
	b.WriteByte('\n')
	bs, err := experiments.AblationBlockSize(s)
	if err != nil {
		return "", err
	}
	b.WriteString(bs.Text)
	b.WriteByte('\n')
	par, err := experiments.AblationParallel(s)
	if err != nil {
		return "", err
	}
	b.WriteString(par.Text)
	b.WriteByte('\n')
	bld, err := experiments.AblationBuild(s)
	if err != nil {
		return "", err
	}
	b.WriteString(bld.Text)
	b.WriteByte('\n')
	til, err := experiments.AblationGemmTiling(s)
	if err != nil {
		return "", err
	}
	b.WriteString(til.Text)
	b.WriteByte('\n')
	mrc, err := experiments.AblationMRC(s)
	if err != nil {
		return "", err
	}
	b.WriteString(mrc.Text)
	b.WriteByte('\n')
	pk, err := experiments.AblationPacking(s)
	if err != nil {
		return "", err
	}
	b.WriteString(pk.Text)
	return b.String(), nil
}
