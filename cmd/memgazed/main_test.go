package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/trace"
)

// logCapture is a concurrency-safe log sink that resolves the server's
// ephemeral address from the "listening on" line.
type logCapture struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addrc chan string
	sent  bool
}

func newLogCapture() *logCapture { return &logCapture{addrc: make(chan string, 1)} }

func (w *logCapture) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		s := w.buf.String()
		if i := strings.Index(s, "listening on "); i >= 0 {
			rest := s[i+len("listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				w.addrc <- rest[:j]
				w.sent = true
			}
		}
	}
	return len(p), nil
}

func (w *logCapture) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func mainTestTrace() *trace.Trace {
	tr := &trace.Trace{Module: "cli", Mode: "sampled", Period: 100, TotalLoads: 1000}
	smp := &trace.Sample{TriggerLoads: 100}
	for i := 0; i < 64; i++ {
		smp.Records = append(smp.Records, trace.Record{
			IP: 0x400000 + uint64(i%8)*6, Addr: 0x10000 + uint64(i)*8,
			TS: uint64(i), Proc: "main", Line: int32(i % 4),
		})
	}
	tr.AppendSample(smp)
	return tr
}

// TestRunLifecycle drives the binary's run() end to end: ephemeral
// listen, healthz, upload + analyze over real HTTP, then context
// cancellation (the SIGTERM path) draining to a clean nil return.
func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logs := newLogCapture()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"}, logs)
	}()

	var base string
	select {
	case addr := <-logs.addrc:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("run exited early: %v\n%s", err, logs.String())
	case <-time.After(5 * time.Second):
		t.Fatalf("no listening line\n%s", logs.String())
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	enc, err := mainTestTrace().Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/traces", memgaze.ContentTypeTrace, bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var info memgaze.TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 || info.ID == "" {
		t.Fatalf("upload: status %d info %+v", resp.StatusCode, info)
	}

	resp, err = http.Post(base+"/v1/traces/"+info.ID+"/analyze", "application/json",
		strings.NewReader(`{"analyses":["functions"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"FunctionDiags"`)) {
		t.Fatalf("analyze: status %d body %.200s", resp.StatusCode, body)
	}

	cancel() // stands in for SIGTERM via signal.NotifyContext
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not exit after cancel\n%s", logs.String())
	}
	if out := logs.String(); !strings.Contains(out, "drained, exiting") {
		t.Errorf("missing drain log line:\n%s", out)
	}
}

// TestRunDataDir drives the -data-dir flag through a full restart:
// boot with a durable directory, upload, drain out, boot a second
// daemon on the same directory and require the trace to survive with
// the same content-hash id and the durable tier reported ready.
func TestRunDataDir(t *testing.T) {
	dir := t.TempDir()
	boot := func(ctx context.Context) (string, *logCapture, chan error) {
		logs := newLogCapture()
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-drain", "5s"}, logs)
		}()
		select {
		case addr := <-logs.addrc:
			return "http://" + addr, logs, done
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, logs.String())
		case <-time.After(5 * time.Second):
			t.Fatalf("no listening line\n%s", logs.String())
		}
		panic("unreachable")
	}
	stop := func(cancel context.CancelFunc, done chan error, logs *logCapture) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after drain", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("run did not exit after cancel\n%s", logs.String())
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	base, logs, done := boot(ctx1)

	enc, err := mainTestTrace().Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/traces", memgaze.ContentTypeTrace, bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var info memgaze.TraceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 || info.ID == "" {
		t.Fatalf("upload: status %d info %+v", resp.StatusCode, info)
	}
	stop(cancel1, done, logs)

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	base, logs, done = boot(ctx2)

	resp, err = http.Get(base + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"durable"`)) {
		t.Fatalf("readyz after restart: status %d body %s", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/v1/traces/" + info.ID + "/raw")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(raw, enc) {
		t.Fatalf("raw after restart: status %d, %d bytes (want %d)", resp.StatusCode, len(raw), len(enc))
	}
	stop(cancel2, done, logs)
}

// TestRunBadFlags: flag errors surface as errors, not panics or hangs.
func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.0.0.1:bad"}, io.Discard); err == nil {
		t.Error("bad address accepted")
	}
}

// TestRunHelp: -h prints usage and exits cleanly (nil, not
// flag.ErrHelp bubbling out as exit status 1).
func TestRunHelp(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &logs); err != nil {
		t.Errorf("run(-h) = %v, want nil", err)
	}
	if !strings.Contains(logs.String(), "-addr") {
		t.Errorf("usage text missing from help output:\n%s", logs.String())
	}
}
