// Command memgazed is the MemGaze-Go trace-analysis service: a
// long-running HTTP daemon that accepts trace uploads (serialised
// traces or raw PT captures), keeps them in a byte-budgeted in-memory
// store — or, with -data-dir, durably in an on-disk segment store that
// survives restarts, with the in-memory store as a hot-tier cache —
// and serves analyzer-engine requests with request coalescing, a
// result cache, and Prometheus metrics. With -peers it joins a static
// replica ring: each trace id is owned by the top -replication replicas
// of its rendezvous order (hashing over the content hash), uploads
// write through to all owners, and requests sent to any replica are
// proxied transparently to the first live owner — the fleet keeps
// answering through single-node loss, and a background repair loop
// re-replicates data and tombstones to rejoining peers.
//
//	memgazed -addr :8080 -data-dir /var/lib/memgazed -workers 8 -timeout 30s
//	memgazed -addr :8081 -advertise 127.0.0.1:8081 -peers 127.0.0.1:8081,127.0.0.1:8082 -replication 2
//
//	curl -X POST --data-binary @pr.mgt -H 'Content-Type: application/x-memgaze-trace' localhost:8080/v1/traces
//	curl -T pr.mgt --no-buffer -H 'Content-Type: application/x-memgaze-trace' localhost:8080/v1/traces:stream
//	curl -X POST -d '{"analyses":["functions","mrc"]}' localhost:8080/v1/traces/<id>/analyze
//	curl localhost:8080/metrics
//
// SIGTERM (or SIGINT) drains in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	memgaze "github.com/memgaze/memgaze-go"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memgazed: %v\n", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag: comma-separated addresses, blanks
// dropped so trailing commas and spacing are forgiven.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run starts the service and blocks until the listener fails or ctx is
// cancelled (SIGTERM/SIGINT); on cancellation it drains in-flight
// requests before returning. Split from main so tests can drive the
// full lifecycle.
func run(ctx context.Context, args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("memgazed", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	storeBudget := fs.Int64("store-budget", 256<<20, "trace store byte budget (LRU eviction over it; < 0 unbounded)")
	resultCache := fs.Int64("result-cache", 64<<20, "result cache byte budget (< 0 disables)")
	workers := fs.Int("workers", 0, "concurrent analysis jobs (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request analysis timeout (expiry answers 504)")
	maxUpload := fs.Int64("max-upload", 256<<20, "maximum upload body bytes (enforced mid-stream on chunked uploads)")
	buildWorkers := fs.Int("build-workers", 0, "samples decoded concurrently per PT-capture upload (0 = GOMAXPROCS)")
	streamChunk := fs.Int("stream-chunk", 0, "read granularity of streamed uploads in bytes (0 = 256 KiB); peak streamed-build memory is O(stream-chunk × build-workers)")
	sweepShards := fs.Int("sweep-shards", 0, "sample shards per analysis trace walk (0 = GOMAXPROCS, 1 = sequential; output is identical at every count)")
	dataDir := fs.String("data-dir", "", "durable trace storage directory: uploads write through to an on-disk segment store and survive restarts (empty = in-memory only)")
	peers := fs.String("peers", "", "comma-separated static replica set (advertise addresses, this replica included); each trace id is owned by its top -replication replicas via rendezvous hashing and requests proxy transparently to the first live owner (empty = single-node)")
	advertise := fs.String("advertise", "", "this replica's own address exactly as listed in -peers (required with -peers)")
	replication := fs.Int("replication", 2, "replicas owning each trace: uploads fan out to this many owners and reads fail over among them (clamped to the peer count; 1 = single-owner fast-fail; only with -peers)")
	repairInterval := fs.Duration("repair-interval", 30*time.Second, "anti-entropy repair period: each round re-replicates under-replicated traces and propagates tombstones to rejoined peers (< 0 disables; only with -peers and -replication > 1)")
	drain := fs.Duration("drain", 10*time.Second, "shutdown drain grace for in-flight requests")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, clean exit
		}
		return err
	}

	srv, err := memgaze.NewServer(memgaze.ServerConfig{
		StoreBudgetBytes: *storeBudget,
		ResultCacheBytes: *resultCache,
		Workers:          *workers,
		RequestTimeout:   *timeout,
		MaxUploadBytes:   *maxUpload,
		BuildWorkers:     *buildWorkers,
		StreamChunkBytes: *streamChunk,
		SweepShards:      *sweepShards,
		DataDir:          *dataDir,
		Peers:            splitPeers(*peers),
		Advertise:        *advertise,
		Replication:      *replication,
		RepairInterval:   *repairInterval,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "memgazed: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(logw, "memgazed: draining (grace %v)\n", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			hs.Close()
			return fmt.Errorf("drain: %w", err)
		}
		<-errc // http.ErrServerClosed
		fmt.Fprintf(logw, "memgazed: drained, exiting\n")
		return nil
	}
}
