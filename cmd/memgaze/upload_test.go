package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/instrument"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/trace"
)

func TestSniffContentType(t *testing.T) {
	cases := []struct {
		magic string
		want  string
		ok    bool
	}{
		{"MGTR", memgaze.ContentTypeTrace, true},
		{"MGPT", memgaze.ContentTypePT, true},
		{"ELF\x7f", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, err := sniffContentType([]byte(c.magic))
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("sniffContentType(%q) = %q, %v; want %q ok=%v", c.magic, got, err, c.want, c.ok)
		}
	}
}

// uploadTestTrace builds a small but non-trivial trace.
func uploadTestTrace() *trace.Trace {
	tr := &trace.Trace{Module: "cli", Mode: "sampled", Period: 1000, TotalLoads: 4000}
	for s := 0; s < 4; s++ {
		smp := &trace.Sample{Seq: s, TriggerLoads: uint64(s+1) * 1000}
		for i := 0; i < 16; i++ {
			smp.Records = append(smp.Records, trace.Record{
				TS: uint64(s*16+i) * 3, IP: 0x401000 + uint64(i)*8,
				Addr: 0x2000_0000 + uint64(i)*64, Proc: "f", Line: int32(i),
			})
		}
		tr.AppendSample(smp)
	}
	return tr
}

// uploadTestCapture synthesises a small PT capture file.
func uploadTestCapture(t *testing.T, path string) {
	t.Helper()
	notes := &instrument.Annotations{
		Module:   "cap",
		Loads:    map[uint64]*instrument.LoadNote{},
		PTWrites: map[uint64]*instrument.PTWNote{},
		AddrMap:  map[uint64]uint64{},
	}
	ptw, load := uint64(0x100), uint64(0x105)
	notes.PTWrites[ptw] = &instrument.PTWNote{PTWAddr: ptw, LoadAddr: load,
		Operand: instrument.OpndBase, NumOperands: 1}
	notes.Loads[load] = &instrument.LoadNote{LoadAddr: load, Proc: "f",
		Class: dataflow.Strided, Stride: 8, Instrumented: true}
	col := pt.NewCollector(pt.Config{Mode: pt.ModeContinuous, Period: 200, BufBytes: 4 << 10})
	ts := uint64(0)
	for i := 0; i < 2000; i++ {
		ts += 7
		col.PTWrite(ptw, 0x2000_0000+uint64(i)*8, ts)
		col.OnLoad(ts)
	}
	cp, err := col.Capture(notes)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := cp.Write(f); err != nil {
		t.Fatal(err)
	}
}

// TestUploadCommand drives the upload subcommand end-to-end against a
// real in-process memgazed: buffered MGTR, streamed MGTR (dedups to the
// same id), and a streamed PT capture with a sniffed content type.
func TestUploadCommand(t *testing.T) {
	srv, err := memgaze.NewServer(memgaze.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	dir := t.TempDir()
	tr := uploadTestTrace()
	mgt := filepath.Join(dir, "t.mgt")
	f, err := os.Create(mgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Buffered upload, magic sniffed.
	if err := cmdUpload([]string{"-server", hs.URL, "-trace", mgt}); err != nil {
		t.Fatalf("buffered upload: %v", err)
	}
	// Streamed twin dedups against the buffered copy.
	rf, err := os.Open(mgt)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	info, err := uploadBody(http.DefaultClient, hs.URL, memgaze.ContentTypeTrace, rf, true)
	if err != nil {
		t.Fatalf("streamed upload: %v", err)
	}
	if info.ID != tr.Hash() || !info.Existed {
		t.Errorf("streamed twin: id %s existed %v, want %s true", info.ID, info.Existed, tr.Hash())
	}
	if info.Records != tr.NumRecords() {
		t.Errorf("records %d, want %d", info.Records, tr.NumRecords())
	}

	// A PT capture streams through the sniffed path too.
	cap := filepath.Join(dir, "c.mgc")
	uploadTestCapture(t, cap)
	if err := cmdUpload([]string{"-server", hs.URL, "-trace", cap, "-stream"}); err != nil {
		t.Fatalf("streamed capture upload: %v", err)
	}

	// Explicit -type beats sniffing; a wrong one is the server's 4xx.
	if err := cmdUpload([]string{"-server", hs.URL, "-trace", cap, "-type", "trace"}); err == nil {
		t.Error("capture uploaded as trace should fail")
	}
	// Unknown -type is a local error.
	if err := cmdUpload([]string{"-server", hs.URL, "-trace", mgt, "-type", "nope"}); err == nil {
		t.Error("unknown -type accepted")
	}
	// Unrecognised magic is a local error before any request.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("ELF\x7fgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdUpload([]string{"-server", hs.URL, "-trace", junk}); err == nil {
		t.Error("junk magic accepted")
	}
}

// TestServerErrorEnvelope pins the CLI's rendering of non-2xx answers:
// a /v1 structured envelope prints its code and message — not a raw
// body dump — and an unstructured body falls back to the trimmed bytes.
func TestServerErrorEnvelope(t *testing.T) {
	env := `{"error":{"code":"peer_unavailable","message":"replica b:1 owning 0abc is down"}}`
	err := serverError("503 Service Unavailable", []byte(env))
	want := "server answered 503 Service Unavailable (peer_unavailable): replica b:1 owning 0abc is down"
	if err == nil || err.Error() != want {
		t.Errorf("envelope error = %v, want %q", err, want)
	}
	err = serverError("502 Bad Gateway", []byte("  <html>proxy</html>\n"))
	if err == nil || err.Error() != "server answered 502 Bad Gateway: <html>proxy</html>" {
		t.Errorf("raw fallback = %v", err)
	}

	// End to end: uploadBody surfaces the envelope the same way, with a
	// nonzero-exit error rather than decoded TraceInfo.
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, env)
	}))
	defer hs.Close()
	_, err = uploadBody(http.DefaultClient, hs.URL, memgaze.ContentTypeTrace, strings.NewReader("MGTR"), false)
	if err == nil || !strings.Contains(err.Error(), "(peer_unavailable): replica b:1 owning 0abc is down") {
		t.Errorf("uploadBody error = %v, want envelope rendering", err)
	}
}
