package main

import (
	"strings"
	"testing"
)

func TestMicroSpecParsing(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"str1", "str1-O3", true},
		{"str8-O0", "str8-O0", true},
		{"irr", "irr-O3", true},
		{"str1|irr", "str1|irr-O3", true},
		{"str1/irr-O0", "str1/irr-O0", true},
		{"nope", "", false},
	}
	for _, c := range cases {
		spec, ok := microSpec(c.in, 128, 2)
		if ok != c.ok {
			t.Errorf("microSpec(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && spec.Name() != c.want {
			t.Errorf("microSpec(%q) = %q, want %q", c.in, spec.Name(), c.want)
		}
	}
}

func TestBuildAppResolvesWorkloads(t *testing.T) {
	wf := workloadFlags{scale: 7, degree: 4, shrink: 32, cacheKB: 8}
	good := []string{
		"minivite:v1", "minivite:v2-O0", "minivite:v3",
		"gap:pr", "gap:pr-spmv-O0", "gap:cc", "gap:cc-sv",
		"darknet:alexnet", "darknet:resnet",
	}
	for _, name := range good {
		app, regions, err := wf.buildApp(name)
		if err != nil {
			t.Errorf("buildApp(%q): %v", name, err)
			continue
		}
		if app.Mod == nil || app.Exec == nil {
			t.Errorf("buildApp(%q): incomplete app", name)
		}
		if len(regions) == 0 {
			t.Errorf("buildApp(%q): no regions", name)
		}
	}
	for _, name := range []string{"minivite:v9", "gap:zz", "what:ever"} {
		if _, _, err := wf.buildApp(name); err == nil {
			t.Errorf("buildApp(%q) should fail", name)
		}
	}
}

func TestAppNamesReflectOpt(t *testing.T) {
	wf := workloadFlags{scale: 7, degree: 4, shrink: 32}
	app, _, err := wf.buildApp("gap:pr-O0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(app.Name, "O0") {
		t.Errorf("app name %q lost the opt level", app.Name)
	}
}
