// Command memgaze is the MemGaze-Go toolchain driver, mirroring the
// paper's pipeline (Fig. 1):
//
//	memgaze list                              — available workloads
//	memgaze instrument -workload micro:str1   — static analysis + rewriting (IR workloads)
//	memgaze trace -workload gap:pr -o pr.mgt  — run under a collector, save the trace
//	memgaze analyze -trace pr.mgt             — diagnostics, windows, zoom tree
//
// Traces are saved in the MGTR binary format (internal/trace) next to a
// JSON annotation file, so analyze runs offline like the real tool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/analysis"
	"github.com/memgaze/memgaze-go/internal/cache"
	"github.com/memgaze/memgaze-go/internal/core"
	"github.com/memgaze/memgaze-go/internal/dataflow"
	"github.com/memgaze/memgaze-go/internal/instrument"
	"github.com/memgaze/memgaze-go/internal/isa"
	"github.com/memgaze/memgaze-go/internal/mem"
	"github.com/memgaze/memgaze-go/internal/pt"
	"github.com/memgaze/memgaze-go/internal/report"
	"github.com/memgaze/memgaze-go/internal/trace"
	"github.com/memgaze/memgaze-go/internal/workloads/darknet"
	"github.com/memgaze/memgaze-go/internal/workloads/gap"
	"github.com/memgaze/memgaze-go/internal/workloads/micro"
	"github.com/memgaze/memgaze-go/internal/workloads/minivite"
	"github.com/memgaze/memgaze-go/internal/workloads/sites"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "instrument":
		err = cmdInstrument(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "upload":
		err = cmdUpload(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "memgaze: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "memgaze: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: memgaze <command> [flags]

commands:
  list        list built-in workloads
  instrument  statically analyse and rewrite an IR workload binary or .s file
  trace       execute a workload under a trace collector and save the trace
  analyze     run MemGaze analyses over a saved trace
  dump        print a saved trace's records (perf-script style)
  convert     rewrite a .mgt file in the current (v3 columnar) wire format
  compare     side-by-side function diagnostics of two traces
  diff        full cross-trace diff: function/MRC/growth/region deltas (local or served)
  upload      ship a trace or PT capture to a memgazed service

run "memgaze <command> -h" for flags.
`)
}

func cmdList() error {
	fmt.Println(`IR workloads (full binary pipeline):
  micro:str1 micro:str2 micro:str8 micro:irr micro:ptr
  micro:str1|irr micro:str1/irr micro:str8/ptr        (suffix -O0 for unoptimised)

application workloads (sites pipeline):
  minivite:v1 minivite:v2 minivite:v3                 (suffix -O0)
  gap:pr gap:pr-spmv gap:cc gap:cc-sv                 (suffix -O0)
  darknet:alexnet darknet:resnet`)
	return nil
}

// microSpec parses micro:<pattern>[-O0].
func microSpec(name string, accesses, reps int) (micro.Spec, bool) {
	opt := micro.O3
	if strings.HasSuffix(name, "-O0") {
		opt = micro.O0
		name = strings.TrimSuffix(name, "-O0")
	}
	name = strings.TrimSuffix(name, "-O3")
	for _, s := range micro.Suite(opt, accesses, reps) {
		if strings.TrimSuffix(strings.TrimSuffix(s.Name(), "-O3"), "-O0") == name {
			return s, true
		}
	}
	return micro.Spec{}, false
}

type workloadFlags struct {
	scale, degree, reps, accesses, shrink int
	cacheKB                               int
}

func (wf *workloadFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&wf.scale, "scale", 10, "graph scale (log2 vertices)")
	fs.IntVar(&wf.degree, "degree", 8, "graph average degree")
	fs.IntVar(&wf.reps, "reps", 50, "micro-benchmark repetitions")
	fs.IntVar(&wf.accesses, "accesses", 2048, "micro-benchmark accesses per pass")
	fs.IntVar(&wf.shrink, "shrink", 16, "darknet per-axis shrink factor")
	fs.IntVar(&wf.cacheKB, "cache-kb", 32, "cache model size in KiB (0 disables)")
}

// buildApp resolves an application workload name.
func (wf *workloadFlags) buildApp(name string) (core.App, []analysis.Region, error) {
	var cc *cache.Config
	if wf.cacheKB > 0 {
		c := cache.DefaultConfig()
		c.SizeBytes = wf.cacheKB << 10
		cc = &c
	}
	opt3 := !strings.HasSuffix(name, "-O0")
	base := strings.TrimSuffix(strings.TrimSuffix(name, "-O0"), "-O3")
	switch {
	case strings.HasPrefix(base, "minivite:"):
		v := map[string]minivite.Variant{"v1": minivite.V1, "v2": minivite.V2, "v3": minivite.V3}[strings.TrimPrefix(base, "minivite:")]
		if v == 0 {
			return core.App{}, nil, fmt.Errorf("unknown miniVite variant in %q", name)
		}
		o := minivite.O0
		if opt3 {
			o = minivite.O3
		}
		w := minivite.New(minivite.Config{Scale: wf.scale, Degree: wf.degree, Variant: v, Opt: o}, true)
		return core.App{Name: w.Name(), Mod: w.Mod,
			Exec: func(r *sites.Runner) { w.Run(r) }, CacheCfg: cc}, w.Regions(), nil
	case strings.HasPrefix(base, "gap:"):
		algo, ok := map[string]gap.Algorithm{
			"pr": gap.PR, "pr-spmv": gap.PRSpmv, "cc": gap.CC, "cc-sv": gap.CCSV,
		}[strings.TrimPrefix(base, "gap:")]
		if !ok {
			return core.App{}, nil, fmt.Errorf("unknown GAP kernel in %q", name)
		}
		o := gap.O0
		if opt3 {
			o = gap.O3
		}
		w := gap.New(gap.Config{Scale: wf.scale, Degree: wf.degree, Algo: algo, Opt: o}, true)
		return core.App{Name: w.Name(), Mod: w.Mod,
			Exec: func(r *sites.Runner) { w.Run(r) }, CacheCfg: cc}, w.Regions(), nil
	case strings.HasPrefix(base, "darknet:"):
		model := darknet.AlexNet
		if strings.Contains(base, "resnet") {
			model = darknet.ResNet152
		}
		w := darknet.New(darknet.Config{Model: model, Shrink: wf.shrink})
		return core.App{Name: w.Name(), Mod: w.Mod,
			Exec: func(r *sites.Runner) { w.Run(r) }, CacheCfg: cc}, w.Regions(), nil
	}
	return core.App{}, nil, fmt.Errorf("unknown workload %q (try 'memgaze list')", name)
}

func cmdInstrument(args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ExitOnError)
	var wf workloadFlags
	wf.register(fs)
	name := fs.String("workload", "micro:str1", "IR workload to instrument")
	file := fs.String("file", "", "assembly file to instrument instead of a built-in workload")
	disasm := fs.Bool("disasm", false, "print instrumented disassembly")
	annOut := fs.String("annotations", "", "write annotation file (JSON)")
	fs.Parse(args)

	var prog *isa.Program
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err := isa.Parse(*file, f)
		if err != nil {
			return err
		}
		prog = p
	} else {
		spec, ok := microSpec(strings.TrimPrefix(*name, "micro:"), wf.accesses, wf.reps)
		if !ok {
			return fmt.Errorf("instrument supports IR workloads (micro:*) or -file; got %q", *name)
		}
		p, _, err := spec.Build()
		if err != nil {
			return err
		}
		prog = p
	}
	out, classes, err := core.Instrument(prog, instrument.DefaultOptions())
	if err != nil {
		return err
	}
	fmt.Printf("module %s: %d instrs, %d B text -> %d instrs, %d B instrumented\n",
		prog.Name, prog.NumInstrs(), prog.Size(), out.Prog.NumInstrs(), out.Prog.Size())
	var counts [3]int
	for _, li := range classes.Loads {
		counts[li.Class]++
	}
	fmt.Printf("loads: %d constant, %d strided, %d irregular; %d ptwrites inserted, %d constants elided\n",
		counts[dataflow.Constant], counts[dataflow.Strided], counts[dataflow.Irregular],
		out.Notes.NumPTWrites, out.Notes.NumConstElided)
	if *annOut != "" {
		if err := out.Notes.Save(*annOut); err != nil {
			return err
		}
		fmt.Printf("annotations written to %s\n", *annOut)
	}
	if *disasm {
		fmt.Println(out.Prog.Disasm())
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var wf workloadFlags
	wf.register(fs)
	name := fs.String("workload", "gap:pr", "workload to trace")
	file := fs.String("file", "", "assembly file to trace instead of a built-in workload")
	mode := fs.String("mode", "sampled", "collector: sampled, opt, or full")
	period := fs.Uint64("period", 10_000, "sampling period in loads")
	buf := fs.Int("buf", 8<<10, "trace buffer bytes")
	out := fs.String("o", "trace.mgt", "output trace file")
	roi := fs.String("hw-filter", "", "comma-separated procedures for PT hardware guards")
	stats := fs.Bool("stats", false, "print decode statistics (bytes, resyncs, losses)")
	workers := fs.Int("build-workers", 0, "samples decoded concurrently when building the trace (0 = GOMAXPROCS)")
	fs.Parse(args)

	cfg := core.DefaultConfig()
	cfg.Period = *period
	cfg.BufBytes = *buf
	cfg.BuildWorkers = *workers
	switch *mode {
	case "sampled":
		cfg.Mode = pt.ModeContinuous
	case "opt":
		cfg.Mode = pt.ModeSampledPT
	case "full":
		cfg.Mode = pt.ModeFull
		cfg.CopyBytesPerCycle = 1.2
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if *roi != "" {
		cfg.HWFilterProcs = strings.Split(*roi, ",")
	}

	var tr *trace.Trace
	var ds pt.DecodeStats
	var overhead, ptwRatio float64
	if *file != "" {
		path := *file
		res, err := core.Run(core.FuncWorkload{WName: path, BuildFn: func() (*isa.Program, *mem.Space, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			defer f.Close()
			p, err := isa.Parse(path, f)
			return p, mem.NewSpace(), err
		}}, cfg)
		if err != nil {
			return err
		}
		tr, ds, overhead, ptwRatio = res.Trace, res.Decode, res.Overhead(), res.PTWriteRatio()
	} else if strings.HasPrefix(*name, "micro:") {
		spec, ok := microSpec(strings.TrimPrefix(*name, "micro:"), wf.accesses, wf.reps)
		if !ok {
			return fmt.Errorf("unknown micro workload %q", *name)
		}
		res, err := core.Run(core.FuncWorkload{WName: spec.Name(), BuildFn: spec.Build}, cfg)
		if err != nil {
			return err
		}
		tr, ds, overhead, ptwRatio = res.Trace, res.Decode, res.Overhead(), res.PTWriteRatio()
	} else {
		app, _, err := wf.buildApp(*name)
		if err != nil {
			return err
		}
		res, err := core.RunApp(app, cfg)
		if err != nil {
			return err
		}
		tr, ds, overhead, ptwRatio = res.Trace, res.Decode, res.Overhead(), res.PTWriteRatio()
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return err
	}
	fmt.Printf("%s: %d samples, %d records (w̄=%.0f), ρ=%.1f κ=%.3f\n",
		tr.Module, tr.NumSamples(), tr.NumRecords(), tr.MeanW(), tr.Rho(), tr.Kappa())
	fmt.Printf("trace: %s recorded (%s on disk: %s); overhead %.1f%%, ptwrite ratio %.3f\n",
		report.Bytes(tr.Bytes), *out, fileSize(*out), 100*overhead, ptwRatio)
	if tr.DroppedEvents > 0 {
		fmt.Printf("dropped events: %d (%.1f%%)\n", tr.DroppedEvents,
			100*float64(tr.DroppedEvents)/float64(tr.DroppedEvents+tr.RecordedEvents))
	}
	if *stats {
		fmt.Printf(`decode stats:
  events %d -> records %d (%d orphan, %d partial pairs)
  bytes: %s packets, %s sync framing, %s lost
  resyncs %d across %d corrupt samples; ~%d events lost
`,
			ds.Events, ds.Records, ds.OrphanEvents, ds.PartialPairs,
			report.Bytes(uint64(ds.PacketBytes)), report.Bytes(uint64(ds.SyncBytes)),
			report.Bytes(uint64(ds.SkippedBytes)),
			ds.Resyncs, ds.CorruptSamples, ds.EstLostEvents)
	}
	return nil
}

func fileSize(path string) string {
	st, err := os.Stat(path)
	if err != nil {
		return "?"
	}
	return report.Bytes(uint64(st.Size()))
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("trace", "trace.mgt", "trace file to analyse")
	block := fs.Uint64("block", 64, "access-block size in bytes")
	topK := fs.Int("top", 10, "rows per table")
	doLines := fs.Bool("lines", false, "also print per-source-line diagnostics")
	doZoom := fs.Bool("zoom", true, "run the location zoom tree")
	doWindows := fs.Bool("windows", true, "print the trace-window histogram")
	doWorkingSet := fs.Bool("working-set", true, "print the page-granularity working-set curve")
	intervals := fs.Int("intervals", 8, "time intervals for the interval-tree breakdown (0 disables)")
	doMRC := fs.Bool("mrc", false, "print the predicted LRU miss-ratio curve")
	doHeatmap := fs.Bool("heatmap", false, "render the hottest region's location × time heatmap")
	roiPct := fs.Float64("suggest-roi", 90, "suggest a region of interest covering this % of loads (0 disables)")
	sweepShards := fs.Int("sweep-shards", 0, "sample shards per analysis trace walk (0 = GOMAXPROCS; output is identical at every count, so -sweep-shards=1 is purely a sequential-walk escape hatch for debugging)")
	fs.Parse(args)
	if *block == 0 {
		return fmt.Errorf("-block must be positive")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("module %s (%s): %d samples, %d records, ρ=%.1f κ=%.3f\n\n",
		tr.Module, tr.Mode, tr.NumSamples(), tr.NumRecords(), tr.Rho(), tr.Kappa())

	// One engine run covers the whole report: the requested analyses
	// share derived data (diagnostics, the stack-distance sweep, the
	// zoom tree) instead of each re-walking the trace.
	kinds := []memgaze.Analysis{memgaze.AnalyzeFunctions, memgaze.AnalyzeConfidence}
	if *doWindows {
		kinds = append(kinds, memgaze.AnalyzeWindows)
	}
	if *doMRC {
		kinds = append(kinds, memgaze.AnalyzeMRC)
	}
	if *doLines {
		kinds = append(kinds, memgaze.AnalyzeLines)
	}
	if *intervals > 0 {
		kinds = append(kinds, memgaze.AnalyzeIntervalTree)
	}
	if *doWorkingSet {
		kinds = append(kinds, memgaze.AnalyzeWorkingSet)
	}
	if *roiPct > 0 {
		kinds = append(kinds, memgaze.AnalyzeROI)
	}
	if *doZoom {
		kinds = append(kinds, memgaze.AnalyzeZoom)
	}
	if *doHeatmap {
		kinds = append(kinds, memgaze.AnalyzeZoom, memgaze.AnalyzeHeatmap)
	}
	rep, err := memgaze.NewAnalyzer(tr,
		memgaze.WithBlockSize(*block),
		memgaze.WithTimeIntervals(*intervals),
		memgaze.WithROICoverage(*roiPct),
		memgaze.WithSweepShards(*sweepShards),
		memgaze.WithAnalyses(kinds...),
	).Run(context.Background())
	if err != nil {
		return err
	}

	t := report.NewTable("Hot functions (code windows)",
		"function", "Ŵ loads", "F", "dF", "dFstr", "dFirr", "Fstr%", "Aconst%", "D")
	for i, d := range rep.FunctionDiags {
		if i >= *topK {
			break
		}
		t.Add(d.Name, report.Count(d.EstLoads), report.Count(d.F), d.DeltaF,
			d.DeltaFstr, d.DeltaFirr, d.FstrPct, d.AconstPct, d.D)
	}
	fmt.Println(t.Render())

	if *doWindows {
		h := report.NewHistogram("Trace windows (footprint vs window size)", "window", "F", "Fstr", "Firr")
		for _, m := range rep.Windows {
			if m.N > 0 {
				h.Add(float64(m.W), m.F, m.Fstr, m.Firr)
			}
		}
		fmt.Println(h.Render())
	}

	// Undersampling detection (§VI-A): flag code windows whose
	// diagnostics rest on too few samples or unstable estimates.
	flagged := 0
	for _, c := range rep.Confidence {
		if c.Flagged {
			flagged++
		}
	}
	if flagged > 0 {
		ct := report.NewTable("Undersampled code windows",
			"function", "samples", "records", "split-half spread", "reason")
		for _, c := range rep.Confidence {
			if c.Flagged {
				ct.Add(c.Name, c.Samples, c.Records, c.HalfSpread, c.Reason)
			}
		}
		fmt.Println(ct.Render())
	}

	if *doMRC {
		mt := report.NewTable("Predicted LRU miss-ratio curve (co-design what-if)",
			"capacity", "miss% (point)", "miss% lower", "miss% upper")
		for i, p := range rep.MRC {
			b := rep.MRCBounds[i]
			mt.Add(report.Bytes(uint64(p.CacheBlocks)*64), 100*p.MissRatio, 100*b.Lo, 100*b.Hi)
		}
		fmt.Println(mt.Render())
	}

	if *doLines {
		lt := report.NewTable("Hot source lines (§III-D attribution)",
			"line", "Ŵ loads", "F", "dF", "Fstr%", "D")
		for i, d := range rep.LineDiags {
			if i >= *topK {
				break
			}
			lt.Add(d.Name, report.Count(d.EstLoads), report.Count(d.F), d.DeltaF, d.FstrPct, d.D)
		}
		fmt.Println(lt.Render())
	}

	if *intervals > 0 {
		it := report.NewTable("Execution intervals (Fig. 4's multi-resolution time analysis)",
			"interval", "samples", "Ŵ loads", "F", "dF", "D")
		for i, d := range rep.IntervalDiags {
			it.Add(i, "-", report.Count(d.EstLoads), report.Count(d.F), d.DeltaF, d.D)
		}
		fmt.Println(it.Render())
		path := rep.IntervalTree.ZoomHot(nil)
		if len(path) > 1 {
			leaf := path[len(path)-1]
			fmt.Printf("hot-interval zoom: root -> sample %d (Ŵ=%s, dF=%s)\n\n",
				leaf.Start, report.Count(leaf.Diag.EstLoads), report.FormatFloat(leaf.Diag.DeltaF))
		}
	}

	if *doWorkingSet {
		wt := report.NewTable("Working set over time (4 KiB pages, §V-B)",
			"interval", "samples", "pages obs", "pages est")
		for _, p := range rep.WorkingSet {
			wt.Add(p.Interval, p.Samples, p.PagesObs, p.PagesEst)
		}
		fmt.Println(wt.Render())
	}

	if *roiPct > 0 {
		fmt.Printf("Suggested region of interest (≥%.0f%% of loads): %s\n",
			*roiPct, strings.Join(rep.ROI, ", "))
		fmt.Printf("  retrace with: memgaze trace -hw-filter %s ...\n\n", strings.Join(rep.ROI, ","))
	}

	if *doZoom || *doHeatmap {
		order := make([]int, len(rep.ZoomLeaves))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return rep.ZoomLeaves[order[i]].Accesses > rep.ZoomLeaves[order[j]].Accesses
		})
		t := report.NewTable("Hot memory regions (location zoom)",
			"region", "size", "hot%", "D", "A", "A/block", "code")
		for i, k := range order {
			if i >= *topK {
				break
			}
			lf := rep.ZoomLeaves[k]
			apb := 0.0
			if blocks := rep.ZoomLeafBlocks[k]; blocks > 0 {
				apb = float64(lf.Accesses) / float64(blocks)
			}
			t.Add(fmt.Sprintf("%#x-%#x", lf.Lo, lf.Hi),
				report.Bytes(lf.Hi-lf.Lo), lf.Pct, lf.Diag.D,
				report.Count(float64(lf.Accesses)), apb,
				strings.Join(lf.HotFuncs(2), ","))
		}
		fmt.Println(t.Render())
	}
	if *doHeatmap && rep.Heatmap != nil {
		h := rep.Heatmap
		fmt.Println(report.RenderHeatmap(
			fmt.Sprintf("Accesses over %#x-%#x (rows=addr, cols=time)", h.Lo, h.Hi),
			h.Access))
		fmt.Println(report.RenderHeatmap("Reuse distance D over the same region", h.Dist))
	}
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("trace", "trace.mgt", "trace file to dump")
	limit := fs.Int("n", 50, "records per sample to print (0 = all)")
	samples := fs.Int("samples", 3, "samples to print (0 = all)")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("# module %s mode %s period %d buffer %d B\n", tr.Module, tr.Mode, tr.Period, tr.BufBytes)
	fmt.Printf("# %d samples, %d records, rho %.1f kappa %.3f\n", tr.NumSamples(), tr.NumRecords(), tr.Rho(), tr.Kappa())
	if tr.LostBytes > 0 {
		fmt.Printf("# decode lost %s of payload to resync (buffer wrap / corruption)\n", report.Bytes(tr.LostBytes))
	}
	for si, s := range tr.AllSamples() {
		if *samples > 0 && si >= *samples {
			fmt.Printf("... %d more samples\n", tr.NumSamples()-si)
			break
		}
		fmt.Printf("sample %d cpu %d trigger@%d loads, w=%d\n", s.Seq, s.CPU, s.TriggerLoads, len(s.Records))
		for i := range s.Records {
			if *limit > 0 && i >= *limit {
				fmt.Printf("  ... %d more records\n", len(s.Records)-i)
				break
			}
			r := &s.Records[i]
			fmt.Printf("  %12d  ip %#x  addr %#x  %-9s +%d  %s:%d\n",
				r.TS, r.IP, r.Addr, r.Class, r.Implied, r.Proc, r.Line)
		}
	}
	return nil
}

// cmdConvert rewrites a trace file in the current wire format. Old v1/v2
// row-oriented files read forever, but the v3 columnar encoding is
// smaller and is what every writer now produces; convert upgrades
// archives in place (or to -o) without touching content — the content
// hash, which is defined over the canonical v3 encoding, is printed so
// callers can verify nothing moved.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("trace", "trace.mgt", "trace file to convert")
	out := fs.String("o", "", "output path (default: replace the input atomically)")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	dst := *out
	replace := dst == "" || dst == *in
	if replace {
		dst = *in + ".tmp"
	}
	g, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := tr.Write(g); err != nil {
		g.Close()
		os.Remove(dst)
		return err
	}
	if err := g.Close(); err != nil {
		os.Remove(dst)
		return err
	}
	if replace {
		if err := os.Rename(dst, *in); err != nil {
			os.Remove(dst)
			return err
		}
		dst = *in
	}
	st, err := os.Stat(dst)
	if err != nil {
		return err
	}
	fmt.Printf("%s: v3, %d samples, %d records, %s, hash %s\n",
		dst, tr.NumSamples(), tr.NumRecords(), report.Bytes(uint64(st.Size())), tr.Hash())
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	aPath := fs.String("a", "", "first trace file (the candidate)")
	bPath := fs.String("b", "", "second trace file (the baseline)")
	block := fs.Uint64("block", 64, "access-block size in bytes")
	topK := fs.Int("top", 12, "rows to print")
	fs.Parse(args)
	if *aPath == "" || *bPath == "" {
		return fmt.Errorf("compare needs -a and -b trace files")
	}
	if *block == 0 {
		return fmt.Errorf("-block must be positive")
	}
	load := func(p string) (*trace.Trace, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	ta, err := load(*aPath)
	if err != nil {
		return err
	}
	tb, err := load(*bPath)
	if err != nil {
		return err
	}
	diagsOf := func(t *trace.Trace) ([]*analysis.Diag, error) {
		rep, err := memgaze.NewAnalyzer(t, memgaze.WithBlockSize(*block),
			memgaze.WithAnalyses(memgaze.AnalyzeFunctions)).Run(context.Background())
		if err != nil {
			return nil, err
		}
		return rep.FunctionDiags, nil
	}
	da, err := diagsOf(ta)
	if err != nil {
		return err
	}
	db, err := diagsOf(tb)
	if err != nil {
		return err
	}
	byName := map[string]*analysis.Diag{}
	for _, d := range db {
		byName[d.Name] = d
	}
	t := report.NewTable(
		fmt.Sprintf("Function diagnostics: %s (A) vs %s (B)", ta.Module, tb.Module),
		"function", "Ŵ A", "Ŵ B", "F A", "F B", "dF A", "dF B", "Fstr% A", "Fstr% B", "D A", "D B")
	for i, d := range da {
		if i >= *topK {
			break
		}
		o := byName[d.Name]
		if o == nil {
			o = &analysis.Diag{Name: d.Name}
		}
		t.Add(d.Name, report.Count(d.EstLoads), report.Count(o.EstLoads),
			report.Count(d.F), report.Count(o.F),
			d.DeltaF, o.DeltaF, d.FstrPct, o.FstrPct, d.D, o.D)
	}
	fmt.Println(t.Render())
	fmt.Printf("A: %d samples, %d records, κ=%.3f   B: %d samples, %d records, κ=%.3f\n",
		ta.NumSamples(), ta.NumRecords(), ta.Kappa(),
		tb.NumSamples(), tb.NumRecords(), tb.Kappa())
	return nil
}
