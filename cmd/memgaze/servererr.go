package main

import (
	"bytes"
	"encoding/json"
	"fmt"

	memgaze "github.com/memgaze/memgaze-go"
)

// serverError shapes a non-2xx memgazed answer into a readable error:
// a /v1 structured envelope renders as its code and message, and
// anything else (an intermediary in the path, a plain-text failure)
// falls back to the trimmed raw body.
func serverError(status string, raw []byte) error {
	var env memgaze.ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error.Code != "" {
		return fmt.Errorf("server answered %s (%s): %s", status, env.Error.Code, env.Error.Message)
	}
	return fmt.Errorf("server answered %s: %s", status, bytes.TrimSpace(raw))
}
