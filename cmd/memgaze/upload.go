package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/report"
)

// chunkedReader hides the body's concrete type from http.NewRequest so
// the client cannot infer a Content-Length and must use chunked
// transfer encoding — the wire shape the streamed server endpoint is
// built for (decode overlaps the network read; nothing is buffered).
type chunkedReader struct{ io.Reader }

// sniffContentType maps a file's magic to the upload content type.
func sniffContentType(magic []byte) (string, error) {
	switch {
	case bytes.HasPrefix(magic, []byte("MGTR")):
		return memgaze.ContentTypeTrace, nil
	case bytes.HasPrefix(magic, []byte("MGPT")):
		return memgaze.ContentTypePT, nil
	}
	return "", fmt.Errorf("unrecognised file magic %q (want a .mgt trace or a PT capture)", magic)
}

// uploadBody ships body to a memgazed service and decodes its TraceInfo
// answer. Streamed mode PUTs to /v1/traces:stream with chunked transfer
// encoding, so the service ingests with bounded memory while the bytes
// are still arriving; buffered mode POSTs to /v1/traces.
func uploadBody(client *http.Client, base, ctype string, body io.Reader, stream bool) (memgaze.TraceInfo, error) {
	var info memgaze.TraceInfo
	base = strings.TrimSuffix(base, "/")
	var req *http.Request
	var err error
	if stream {
		req, err = http.NewRequest(http.MethodPut, base+"/v1/traces:stream", chunkedReader{body})
	} else {
		req, err = http.NewRequest(http.MethodPost, base+"/v1/traces", body)
	}
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", ctype)
	resp, err := client.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return info, err
	}
	if resp.StatusCode >= 300 {
		return info, serverError(resp.Status, b)
	}
	if err := json.Unmarshal(b, &info); err != nil {
		return info, fmt.Errorf("decoding server answer: %w", err)
	}
	return info, nil
}

func cmdUpload(args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	in := fs.String("trace", "trace.mgt", "trace (.mgt) or PT capture file to upload")
	base := fs.String("server", "http://localhost:8080", "memgazed base URL")
	stream := fs.Bool("stream", false, "stream the upload (chunked PUT /v1/traces:stream; bounded server memory)")
	ctype := fs.String("type", "", "content type: trace, pt, or empty to sniff the file magic")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	ct := ""
	switch *ctype {
	case "trace":
		ct = memgaze.ContentTypeTrace
	case "pt":
		ct = memgaze.ContentTypePT
	case "":
		magic := make([]byte, 4)
		if _, err := io.ReadFull(f, magic); err != nil {
			return fmt.Errorf("reading %s: %w", *in, err)
		}
		if ct, err = sniffContentType(magic); err != nil {
			return err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -type %q (want trace, pt, or empty)", *ctype)
	}

	info, err := uploadBody(http.DefaultClient, *base, ct, f, *stream)
	if err != nil {
		return err
	}
	verb := "stored"
	if info.Existed {
		verb = "already stored"
	}
	mode := "buffered"
	if *stream {
		mode = "streamed"
	}
	fmt.Printf("%s %s (%s): %s\n", verb, info.ID, mode, *base)
	fmt.Printf("%s (%s): %d samples, %d records, %s; ρ=%.1f κ=%.3f\n",
		info.Module, info.Mode, info.Samples, info.Records,
		report.Bytes(uint64(info.Bytes)), info.Rho, info.Kappa)
	if d := info.Decode; d != nil && d.Resyncs > 0 {
		fmt.Printf("decode: %d resyncs across %d corrupt samples, %s lost\n",
			d.Resyncs, d.CorruptSamples, report.Bytes(uint64(d.SkippedBytes)))
	}
	return nil
}
