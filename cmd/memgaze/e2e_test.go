package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/memgaze/memgaze-go/internal/trace"
)

// buildCLI compiles the memgaze binary once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "memgaze")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("memgaze %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestCLIEndToEnd drives the whole tool surface the way a user would:
// trace two workload variants, analyze, dump, and compare.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.mgt")
	v3 := filepath.Join(dir, "v3.mgt")

	out := runCLI(t, bin, "trace", "-workload", "minivite:v1", "-scale", "9",
		"-period", "8000", "-o", v1)
	if !strings.Contains(out, "samples") || !strings.Contains(out, "ρ=") {
		t.Errorf("trace output missing summary:\n%s", out)
	}
	runCLI(t, bin, "trace", "-workload", "minivite:v3", "-scale", "9",
		"-period", "8000", "-o", v3)

	an := runCLI(t, bin, "analyze", "-trace", v1, "-top", "5")
	for _, want := range []string{
		"Hot functions", "buildMap", "Trace windows",
		"Execution intervals", "Working set", "Suggested region of interest",
		"Hot memory regions",
	} {
		if !strings.Contains(an, want) {
			t.Errorf("analyze output missing %q", want)
		}
	}

	dump := runCLI(t, bin, "dump", "-trace", v1, "-n", "3", "-samples", "2")
	if !strings.Contains(dump, "sample 0") || !strings.Contains(dump, "ip 0x") {
		t.Errorf("dump output malformed:\n%.400s", dump)
	}

	cmp := runCLI(t, bin, "compare", "-a", v1, "-b", v3, "-top", "4")
	if !strings.Contains(cmp, "getMax") || !strings.Contains(cmp, "miniVite-O3-v1") {
		t.Errorf("compare output malformed:\n%.400s", cmp)
	}

	df := runCLI(t, bin, "diff", "-a", v1, "-b", v3, "-top", "6")
	for _, want := range []string{
		"A: miniVite-O3-v1", "B: miniVite-O3-v3",
		"Function shifts", "Miss-ratio deltas", "Footprint-growth divergence",
		"Region shifts",
	} {
		if !strings.Contains(df, want) {
			t.Errorf("diff output missing %q:\n%.600s", want, df)
		}
	}

	// instrument a temp .s file.
	asm := filepath.Join(dir, "p.s")
	src := "main: (frame 16)\n  .entry:\n    movi r4, 0x20000000\n    movi r5, 0\n" +
		"  .loop:\n    load r0, [r4+r5*8]\n    addi r5, r5, 1\n    bri.lt r5, 64, loop\n" +
		"  .done:\n    halt\n"
	if err := os.WriteFile(asm, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ins := runCLI(t, bin, "instrument", "-file", asm, "-disasm")
	if !strings.Contains(ins, "ptwrite") || !strings.Contains(ins, "strided") {
		t.Errorf("instrument -file output malformed:\n%.400s", ins)
	}

	// list and help never fail.
	if l := runCLI(t, bin, "list"); !strings.Contains(l, "gap:pr") {
		t.Errorf("list output malformed:\n%s", l)
	}
}

// TestCLIConvert downgrades a traced file to the legacy v2 row format,
// upgrades it back with `memgaze convert`, and verifies the content
// hash survived the round trip.
func TestCLIConvert(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	mgt := filepath.Join(dir, "t.mgt")
	runCLI(t, bin, "trace", "-workload", "minivite:v1", "-scale", "9",
		"-period", "8000", "-o", mgt)

	f, err := os.Open(mgt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	wantHash := tr.Hash()
	legacy, err := tr.EncodeLegacy(2)
	if err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(dir, "legacy.mgt")
	if err := os.WriteFile(old, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	// In-place upgrade, then to a separate -o path.
	out := runCLI(t, bin, "convert", "-trace", old)
	if !strings.Contains(out, wantHash) {
		t.Errorf("convert lost the content hash (want %s):\n%s", wantHash, out)
	}
	upgraded, err := os.ReadFile(old)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(upgraded)
	if err != nil {
		t.Fatalf("converted file unreadable: %v", err)
	}
	if h := got.Hash(); h != wantHash {
		t.Errorf("converted hash %s, want %s", h, wantHash)
	}

	sep := filepath.Join(dir, "out.mgt")
	runCLI(t, bin, "convert", "-trace", mgt, "-o", sep)
	if _, err := os.Stat(sep); err != nil {
		t.Errorf("convert -o did not write the output: %v", err)
	}
}
