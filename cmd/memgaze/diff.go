package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	memgaze "github.com/memgaze/memgaze-go"
	"github.com/memgaze/memgaze-go/internal/report"
	"github.com/memgaze/memgaze-go/internal/trace"
)

// cmdDiff compares two traces analysis by analysis — the paper's
// side-by-side case-study reading (miniVite v1 vs v3, O0 vs O3) as one
// command. -a/-b name local .mgt files, or resident trace ids when
// -server is set; the server path POSTs /v1/diff so both reports come
// from (or land in) the service's result cache.
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	a := fs.String("a", "", "first trace file, or trace id with -server (the candidate)")
	b := fs.String("b", "", "second trace file, or trace id with -server (the baseline)")
	base := fs.String("server", "", "memgazed base URL; -a/-b are then resident trace ids")
	block := fs.Uint64("block", 64, "access-block size in bytes")
	topK := fs.Int("top", 12, "rows per table (0 = all)")
	fs.Parse(args)
	if *a == "" || *b == "" {
		return fmt.Errorf("diff needs -a and -b")
	}
	if *block == 0 {
		return fmt.Errorf("-block must be positive")
	}

	var d *memgaze.DiffReport
	var err error
	if *base != "" {
		d, err = serverDiff(*base, *a, *b, *block, *topK)
	} else {
		d, err = localDiff(*a, *b, *block, *topK)
	}
	if err != nil {
		return err
	}
	renderDiff(d, *block, *topK)
	return nil
}

func localDiff(aPath, bPath string, block uint64, topK int) (*memgaze.DiffReport, error) {
	load := func(p string) (*trace.Trace, error) {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	ta, err := load(aPath)
	if err != nil {
		return nil, err
	}
	tb, err := load(bPath)
	if err != nil {
		return nil, err
	}
	return memgaze.CompareTraces(context.Background(), ta, tb,
		memgaze.WithDiffTopK(topK),
		memgaze.WithDiffEngineOptions(
			memgaze.WithBlockSize(block),
			memgaze.WithAnalyses(memgaze.DiffAnalyses()...)))
}

func serverDiff(base, a, b string, block uint64, topK int) (*memgaze.DiffReport, error) {
	names := make([]string, 0, len(memgaze.DiffAnalyses()))
	for _, an := range memgaze.DiffAnalyses() {
		names = append(names, an.String())
	}
	req := memgaze.DiffRequest{A: a, B: b, TopK: topK}
	req.Analyses = names
	req.BlockSize = block
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(strings.TrimSuffix(base, "/")+"/v1/diff",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, serverError(resp.Status, raw)
	}
	var d memgaze.DiffReport
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("decoding diff answer: %w", err)
	}
	return &d, nil
}

func renderDiff(d *memgaze.DiffReport, block uint64, topK int) {
	fmt.Printf("A: %s — %d samples, %d records, κ=%.3f\n",
		d.A.Module, d.A.Samples, d.A.Records, d.A.Kappa)
	fmt.Printf("B: %s — %d samples, %d records, κ=%.3f\n\n",
		d.B.Module, d.B.Samples, d.B.Records, d.B.Kappa)

	if len(d.Functions) > 0 {
		t := report.NewTable("Function shifts (Ŵ, F, D; Δ = A − B)",
			"function", "Ŵ A", "Ŵ B", "ΔŴ", "F A", "F B", "ΔF", "D A", "D B", "ΔD", "note")
		for _, s := range d.Functions {
			note := s.OnlyIn
			if note != "" {
				note = "only " + note
			}
			if s.LowConfidence {
				if note != "" {
					note += ", "
				}
				note += "low-conf"
			}
			t.Add(s.Name, report.Count(s.LoadsA), report.Count(s.LoadsB), report.Count(s.DLoads),
				report.Count(s.FA), report.Count(s.FB), report.Count(s.DF),
				s.DistA, s.DistB, s.DDist, note)
		}
		fmt.Println(t.Render())
	}

	if len(d.MRC) > 0 {
		t := report.NewTable("Miss-ratio deltas (Δ flagged * when the confidence bracket excludes zero)",
			"capacity", "miss% A", "miss% B", "Δpp", "Δ low", "Δ high", "")
		for _, m := range d.MRC {
			sig := ""
			if m.Significant {
				sig = "*"
			}
			t.Add(report.Bytes(uint64(m.CacheBlocks)*block),
				100*m.A, 100*m.B, 100*m.Delta, 100*m.Lo, 100*m.Hi, sig)
		}
		fmt.Println(t.Render())
	}

	if len(d.Growth) > 0 {
		fmt.Printf("Footprint-growth divergence over normalized time: %s (mean |ΔF_A − ΔF_B| across %d intervals)\n\n",
			report.FormatFloat(d.GrowthDivergence), len(d.Growth))
	}

	if len(d.Regions) > 0 {
		t := report.NewTable("Region shifts (zoom leaves aligned by address overlap)",
			"region A", "region B", "acc A", "acc B", "Δacc", "hot% A", "hot% B", "note")
		rows := d.Regions
		if topK > 0 && len(rows) > topK {
			rows = rows[:topK]
		}
		span := func(lo, hi uint64) string {
			if lo == 0 && hi == 0 {
				return "-"
			}
			return fmt.Sprintf("%#x-%#x", lo, hi)
		}
		for _, r := range rows {
			note := r.OnlyIn
			if note != "" {
				note = "only " + note
			}
			t.Add(span(r.LoA, r.HiA), span(r.LoB, r.HiB),
				report.Count(float64(r.AccA)), report.Count(float64(r.AccB)),
				report.Count(float64(r.DAcc)), r.PctA, r.PctB, note)
		}
		fmt.Println(t.Render())
	}
}
